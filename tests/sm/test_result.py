"""Unit tests for SimResult accessors and error paths."""

import pytest

from repro.core import partitioned_baseline
from repro.sm import simulate
from tests.util import compiled, single_warp_kernel, warp_alu_independent, warp_streaming_loads


@pytest.fixture(scope="module")
def runs():
    base = partitioned_baseline()
    a = simulate(compiled(single_warp_kernel(warp_alu_independent(40), name="a")), base)
    a2 = simulate(compiled(single_warp_kernel(warp_alu_independent(80), name="a")), base)
    b = simulate(compiled(single_warp_kernel(warp_streaming_loads(4), name="b")), base)
    return a, a2, b


class TestComparisons:
    def test_speedup_requires_same_kernel(self, runs):
        a, _, b = runs
        with pytest.raises(ValueError, match="different kernels"):
            a.speedup_over(b)

    def test_speedup_direction(self, runs):
        a, a2, _ = runs
        # a2 does twice the work: a is faster, so a.speedup_over(a2) > 1.
        assert a.speedup_over(a2) > 1.0
        assert a2.speedup_over(a) < 1.0

    def test_dram_ratio_zero_baseline(self, runs):
        a, a2, b = runs
        assert a.dram_accesses == 0
        assert a.dram_traffic_ratio(a2) == 1.0  # 0/0 -> no change
        assert b.dram_traffic_ratio(a) == float("inf")

    def test_ipc_bounds(self, runs):
        for r in runs:
            assert 0 < r.ipc <= 1.0  # single-issue SM


class TestEnergyCounts:
    def test_aggregates(self, runs):
        _, _, b = runs
        c = b.energy_counts
        assert c.mrf_accesses == c.mrf_reads + c.mrf_writes
        assert c.cache_rows == c.cache_row_reads + c.cache_row_writes
        assert c.shared_rows == 0  # no shared ops in this kernel

    def test_histogram_fractions_sum(self, runs):
        for r in runs:
            if r.conflict_histogram.total:
                assert sum(r.conflict_histogram.fractions().values()) == pytest.approx(1.0)
