"""Event vs columnar engine equivalence (the replay engine's contract).

The columnar replayer (:mod:`repro.sm.replay`) exists purely for speed:
for every kernel, partition, and memory-system configuration it must
produce a :class:`~repro.sm.result.SimResult` *equal* to the per-op
event engine's -- same cycles, same counters, same energy, same notes.
This sweep is the enforcement: kernels x partitions x MSHR settings,
single-SM and chip scope, compared field for field.
"""

from dataclasses import replace

import pytest

from repro.chip.config import ChipConfig
from repro.chip.simulator import simulate_chip
from repro.core import partitioned_baseline
from repro.experiments.runner import Runner
from repro.sm.simulator import simulate

KERNELS = ("vectoradd", "matrixmul", "needle", "bfs")
PARTITIONS = ("baseline", "unified384")
MSHRS = (0, 4)


@pytest.fixture(scope="module")
def runner():
    return Runner("tiny")


def _partition(runner, kernel, name):
    if name == "baseline":
        return partitioned_baseline()
    try:
        return runner.allocation(kernel).partition
    except Exception:
        pytest.skip(f"{kernel} has no unified-384 allocation at this scale")


def _config(runner, mshr):
    cfg = runner.config
    if mshr:
        # Banked open-page timing alongside the MSHRs, as the memsys
        # experiments run it -- the replayer's hardest arm.
        return replace(
            cfg, mshr_entries=mshr, dram_banks=8, dram_row_hit_latency=160
        )
    return replace(cfg, mshr_entries=0)


@pytest.mark.parametrize("mshr", MSHRS)
@pytest.mark.parametrize("part_name", PARTITIONS)
@pytest.mark.parametrize("kernel", KERNELS)
def test_engines_bit_identical(runner, kernel, part_name, mshr):
    ck = runner.compiled(kernel)
    part = _partition(runner, kernel, part_name)
    cfg = _config(runner, mshr)
    # Defeat the tiered warm-up (first uninstrumented sim of a kernel
    # runs the event core): every case here must compare the real
    # replayer, not the warm-up pass.
    ck._plan_cache[("colwarm", cfg.cache_line_bytes)] = True
    event = simulate(ck, part, replace(cfg, engine="event"))
    columnar = simulate(ck, part, replace(cfg, engine="columnar"))
    # Whole-dataclass equality covers cycles, instruction and conflict
    # counts, the conflict histogram, cache/DRAM stats, energy, and
    # notes in one shot; compare fields first for readable failures.
    assert columnar.cycles == event.cycles
    assert columnar.instructions == event.instructions
    assert columnar.notes == event.notes
    assert columnar == event


@pytest.mark.parametrize("mshr", MSHRS)
@pytest.mark.parametrize("kernel", ("vectoradd", "needle"))
def test_engines_bit_identical_at_chip_scope(runner, kernel, mshr):
    """Chip scope: shared arbitrated DRAM, 4 SMs, both engines."""
    ck = runner.compiled(kernel)
    part = partitioned_baseline()
    cfg = _config(runner, mshr)
    chip_e = ChipConfig(
        num_sms=4, dram_bytes_per_cycle=32.0, dram_channels=2,
        sm=replace(cfg, engine="event"),
    )
    chip_c = replace(chip_e, sm=replace(cfg, engine="columnar"))
    event = simulate_chip(ck, part, chip_e)
    columnar = simulate_chip(ck, part, chip_c)
    assert columnar.cycles == event.cycles
    assert columnar.per_sm == event.per_sm
    assert columnar.ctas_per_sm == event.ctas_per_sm
    assert columnar.dram_channel_bytes == event.dram_channel_bytes
    assert columnar.notes == event.notes
