"""Non-blocking memory system: miss merging, mshr_full stalls, conservation.

The blocking model (``mshr_entries=0``, the default) stays the golden
reference; these tests pin the behaviours the MSHR path adds on top:
secondary misses merge into in-flight fills, a full file shows up as the
``mshr_full`` structural stall cause, and the ``repro.obs`` conservation
invariant stays exact.
"""

import pytest

from repro.core import partitioned_baseline
from repro.kernels import get_benchmark
from repro.obs import CAUSE_MSHR_FULL, Collector
from repro.sm import SMConfig, simulate
from tests.util import compiled, multi_warp_kernel, warp_streaming_loads

BASE = partitioned_baseline()


def _nonblocking(entries, **kw):
    return SMConfig(mshr_entries=entries, **kw)


class TestMissMerging:
    def test_two_warps_missing_same_line_make_one_fill(self):
        # Both warps load line 0; the second miss must merge into the
        # first warp's in-flight fill instead of refetching the line.
        k = compiled(multi_warp_kernel(
            [warp_streaming_loads(1, base=0), warp_streaming_loads(1, base=0)]
        ))
        r = simulate(k, BASE, _nonblocking(16))
        assert r.dram_accesses == 1
        mshr = r.notes["memsys"]["mshr"]
        assert mshr["primary_misses"] == 1
        assert mshr["secondary_merges"] == 1

    def test_distinct_lines_do_not_merge(self):
        k = compiled(multi_warp_kernel(
            [warp_streaming_loads(1, base=0), warp_streaming_loads(1, base=128)]
        ))
        r = simulate(k, BASE, _nonblocking(16))
        assert r.dram_accesses == 2
        mshr = r.notes["memsys"]["mshr"]
        assert mshr["primary_misses"] == 2
        assert mshr["secondary_merges"] == 0

    def test_merged_warp_waits_for_the_fill(self):
        # The merging warp sleeps until the shared fill lands, so the
        # run is at least one full DRAM latency long.
        k = compiled(multi_warp_kernel(
            [warp_streaming_loads(1, base=0), warp_streaming_loads(1, base=0)]
        ))
        cfg = _nonblocking(16)
        r = simulate(k, BASE, cfg)
        assert r.cycles > cfg.dram_latency


class TestMSHRFullStalls:
    def _streaming_kernel(self, warps=4, loads=8):
        return compiled(multi_warp_kernel([
            warp_streaming_loads(loads, base=w * loads * 128)
            for w in range(warps)
        ]))

    def test_full_file_charges_mshr_full_and_conserves(self):
        k = self._streaming_kernel()
        col = Collector()
        r = simulate(k, BASE, _nonblocking(1), collector=col)
        assert col.conservation_errors() == []
        assert r.stall_cycles[CAUSE_MSHR_FULL] > 0.0
        mshr = r.notes["memsys"]["mshr"]
        assert mshr["full_stalls"] > 0
        assert mshr["full_stall_cycles"] > 0.0
        assert mshr["peak_outstanding"] == 1

    def test_ample_entries_never_stall(self):
        k = self._streaming_kernel()
        col = Collector()
        r = simulate(k, BASE, _nonblocking(64), collector=col)
        assert col.conservation_errors() == []
        assert r.stall_cycles.get(CAUSE_MSHR_FULL, 0.0) == 0.0
        assert r.notes["memsys"]["mshr"]["full_stalls"] == 0

    def test_more_entries_never_slower_here(self):
        # Four warps need four concurrent fills: 1 and 2 entries starve,
        # 4 already saturates, so more entries change nothing.
        k = self._streaming_kernel()
        cycles = [simulate(k, BASE, _nonblocking(n)).cycles for n in (1, 2, 4, 16)]
        assert cycles[0] > cycles[1] > cycles[2] == cycles[3]


class TestConservationAcrossBenchmarks:
    KERNELS = ("vectoradd", "matrixmul", "needle", "bfs", "dgemm", "aes")

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_invariant_exact_in_nonblocking_mode(self, kernel):
        k = get_benchmark(kernel).build("tiny")
        cfg = _nonblocking(4, dram_banks=8, dram_row_hit_latency=160)
        col = Collector()
        simulate(compiled(k), BASE, cfg, collector=col)
        assert col.conservation_errors() == []


class TestResultNotes:
    def test_blocking_default_leaves_notes_empty(self):
        k = compiled(multi_warp_kernel([warp_streaming_loads(2)]))
        r = simulate(k, BASE)
        assert "memsys" not in r.notes

    def test_memsys_payload_shape(self):
        k = compiled(multi_warp_kernel([warp_streaming_loads(4)]))
        cfg = _nonblocking(8, dram_banks=4, dram_row_hit_latency=160)
        r = simulate(k, BASE, cfg)
        memsys = r.notes["memsys"]
        assert set(memsys) == {"mshr", "dram_row_hits", "dram_row_misses"}
        assert set(memsys["mshr"]) == {
            "entries", "primary_misses", "secondary_merges",
            "full_stalls", "full_stall_cycles", "peak_outstanding",
        }
        assert memsys["mshr"]["entries"] == 8
        # Four consecutive lines in one 2 KB row: the first opens it,
        # the rest hit.
        assert memsys["dram_row_misses"] >= 1
        assert memsys["dram_row_hits"] >= 1


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(mshr_entries=-1),
            dict(dram_banks=0),
            dict(dram_row_bytes=0),
            dict(dram_row_hit_latency=-1),
        ],
    )
    def test_bad_memsys_fields_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SMConfig(**kwargs)

    def test_non_blocking_property(self):
        assert not SMConfig().non_blocking
        assert SMConfig(mshr_entries=1).non_blocking
        assert SMConfig().make_mshr_file() is None
        assert SMConfig(mshr_entries=2).make_mshr_file().num_entries == 2
