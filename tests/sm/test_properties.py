"""Property-based invariants of the SM simulator.

Random small kernels (mixed ALU/SFU/memory/barrier content) are run
under random partitions; the invariants below must hold for every one:
conservation of work, monotonicity of the clock, determinism, and
consistency of the traffic counters.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import compile_kernel
from repro.core import DesignStyle, MemoryPartition, partitioned_baseline
from repro.core.partition import KB
from repro.isa import CTATrace, KernelTrace, LaunchConfig, WarpBuilder
from repro.sm import SMConfig, simulate


@st.composite
def small_kernels(draw):
    n_warps = draw(st.integers(1, 4))
    n_ctas = draw(st.integers(1, 3))
    n_blocks = draw(st.integers(1, 6))
    use_barriers = draw(st.booleans())
    smem_words = 64

    def warp(cta: int, w: int) -> list:
        b = WarpBuilder()
        v = b.iconst()
        for blk in range(n_blocks):
            kind = (blk + cta + w) % 4
            base = ((cta * 7 + w * 3 + blk) * 128) % (1 << 16)
            if kind == 0:
                v = b.alu(v, b.iconst())
            elif kind == 1:
                v = b.load_global([base + 4 * t for t in range(32)], v)
            elif kind == 2:
                b.store_shared([4 * ((blk * 32 + t) % smem_words) for t in range(32)], v)
                v = b.load_shared([4 * ((blk + t) % smem_words) for t in range(32)])
            else:
                v = b.sfu(v)
            if use_barriers:
                b.barrier()
        b.store_global([(1 << 20) + (cta * n_warps + w) * 128 + 4 * t for t in range(32)], v)
        return b.ops

    lc = LaunchConfig(
        threads_per_cta=32 * n_warps,
        num_ctas=n_ctas,
        smem_bytes_per_cta=4 * smem_words,
    )
    ctas = [CTATrace([warp(c, w) for w in range(n_warps)]) for c in range(n_ctas)]
    return KernelTrace("prop", lc, ctas)


partitions = st.sampled_from(
    [
        partitioned_baseline(),
        MemoryPartition(DesignStyle.PARTITIONED, 64 * KB, 16 * KB, 0),
        MemoryPartition(DesignStyle.UNIFIED, 128 * KB, 64 * KB, 192 * KB),
        MemoryPartition(DesignStyle.UNIFIED, 64 * KB, 16 * KB, 16 * KB),
        MemoryPartition(DesignStyle.FERMI_LIKE, 256 * KB, 96 * KB, 32 * KB),
    ]
)


@given(trace=small_kernels(), partition=partitions)
@settings(max_examples=40, deadline=None)
def test_work_conservation_and_clock(trace, partition):
    ck = compile_kernel(trace)
    r = simulate(ck, partition)
    # Every instruction issues exactly once.
    assert r.instructions == ck.total_ops
    # The clock can never beat one instruction per cycle.
    assert r.cycles >= r.instructions
    # Traffic counters are consistent.
    assert r.dram_bytes * 8 == r.energy_counts.dram_bits
    assert r.cache_stats.reads + r.cache_stats.writes >= 0
    if partition.cache_bytes == 0:
        assert r.cache_stats.read_hits == 0


@given(trace=small_kernels(), partition=partitions)
@settings(max_examples=20, deadline=None)
def test_determinism(trace, partition):
    ck = compile_kernel(trace)
    a = simulate(ck, partition)
    b = simulate(ck, partition)
    assert a.cycles == b.cycles
    assert a.dram_accesses == b.dram_accesses
    assert a.bank_conflict_cycles == b.bank_conflict_cycles


@given(trace=small_kernels())
@settings(max_examples=20, deadline=None)
def test_more_threads_never_increase_total_work(trace):
    ck = compile_kernel(trace)
    base = partitioned_baseline()
    wide = simulate(ck, base)
    narrow = simulate(ck, base, thread_target=trace.launch.threads_per_cta)
    assert wide.instructions == narrow.instructions
    # Narrower residency can only slow things down or tie.
    assert narrow.cycles >= wide.cycles - 1e-9


@given(trace=small_kernels(), latency=st.sampled_from([0, 100, 400, 1000]))
@settings(max_examples=20, deadline=None)
def test_dram_latency_monotonicity(trace, latency):
    ck = compile_kernel(trace)
    fast = simulate(ck, partitioned_baseline(), SMConfig(dram_latency=latency))
    slow = simulate(ck, partitioned_baseline(), SMConfig(dram_latency=latency + 200))
    assert slow.cycles >= fast.cycles - 1e-9
    assert slow.dram_accesses == fast.dram_accesses
