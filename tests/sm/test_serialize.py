"""SimResult / MemoryPartition (de)serialization round trips."""

import json

import pytest

from repro.core import fermi_like, partitioned_baseline, partitioned_design
from repro.experiments.runner import Runner
from repro.sm.serialize import (
    RESULT_FORMAT_VERSION,
    load_result,
    partition_from_dict,
    partition_to_dict,
    result_from_dict,
    result_to_dict,
    save_result,
)


@pytest.fixture(scope="module")
def result():
    return Runner("tiny").baseline("needle")


class TestPartitionRoundTrip:
    @pytest.mark.parametrize(
        "partition",
        [partitioned_baseline(), fermi_like(0), fermi_like(1), partitioned_design(64, 128, 192)],
        ids=["baseline", "fermi0", "fermi1", "custom"],
    )
    def test_exact(self, partition):
        assert partition_from_dict(partition_to_dict(partition)) == partition

    def test_json_compatible(self):
        json.dumps(partition_to_dict(partitioned_baseline()))


class TestResultRoundTrip:
    def test_field_for_field(self, result):
        back = result_from_dict(result_to_dict(result))
        assert back == result

    def test_dict_is_json_exact(self, result):
        # Through an actual JSON encode/decode, not just dicts: float
        # cycle counts must survive bit-exactly.
        back = result_from_dict(json.loads(json.dumps(result_to_dict(result))))
        assert back.cycles == result.cycles
        assert back == result

    def test_file_round_trip(self, result, tmp_path):
        path = tmp_path / "r.json"
        save_result(result, path)
        assert load_result(path) == result

    def test_version_mismatch_rejected(self, result):
        stale = result_to_dict(result)
        stale["version"] = RESULT_FORMAT_VERSION + 1
        with pytest.raises(ValueError, match="format version"):
            result_from_dict(stale)

    def test_missing_version_rejected(self, result):
        stale = result_to_dict(result)
        del stale["version"]
        with pytest.raises(ValueError, match="format version"):
            result_from_dict(stale)


class TestInstrumentedRoundTrip:
    """v2 of the format carries the observability layer's stall totals."""

    @pytest.fixture(scope="class")
    def instrumented(self):
        from repro.compiler import compile_kernel
        from repro.kernels import get_benchmark
        from repro.obs import Collector
        from repro.sm.simulator import simulate

        ck = compile_kernel(get_benchmark("needle").build("tiny"))
        return simulate(ck, partitioned_baseline(), collector=Collector())

    def test_format_version_is_2(self):
        assert RESULT_FORMAT_VERSION == 2

    def test_stall_cycles_survive_json(self, instrumented):
        assert instrumented.stall_cycles  # the collector filled them
        back = result_from_dict(
            json.loads(json.dumps(result_to_dict(instrumented)))
        )
        assert back.stall_cycles == instrumented.stall_cycles
        assert back == instrumented

    def test_uninstrumented_round_trips_empty(self, result):
        assert result.stall_cycles == {}
        back = result_from_dict(result_to_dict(result))
        assert back.stall_cycles == {}
