"""Tests for the optional two-level warp scheduler runtime model.

The paper builds on a two-level scheduler whose prior work [8] found
that descheduling stalled warps costs no performance.  The optional
runtime model charges a reactivation latency to warps stalling past a
threshold; these tests verify both the mechanism and the prior work's
claim on our workloads.
"""

import pytest

from repro.core import partitioned_baseline
from repro.experiments.runner import Runner
from repro.sm import SMConfig, simulate
from tests.util import compiled, single_warp_kernel, warp_alu_chain, warp_streaming_loads


@pytest.fixture(scope="module")
def rn():
    return Runner("tiny")


class TestMechanism:
    def test_short_stalls_unaffected(self):
        # An 8-cycle ALU chain never crosses the 40-cycle threshold.
        k = compiled(single_warp_kernel(warp_alu_chain(50)))
        a = simulate(k, partitioned_baseline())
        b = simulate(k, partitioned_baseline(), SMConfig(deschedule_latency=25))
        assert a.cycles == b.cycles

    def test_long_stalls_pay_reactivation(self):
        # Each dependent DRAM load stalls ~400 cycles: every one pays.
        k = compiled(single_warp_kernel(warp_streaming_loads(10)))
        a = simulate(k, partitioned_baseline())
        b = simulate(k, partitioned_baseline(), SMConfig(deschedule_latency=25))
        assert b.cycles >= a.cycles + 10 * 25 * 0.9

    def test_threshold_configurable(self):
        k = compiled(single_warp_kernel(warp_streaming_loads(10)))
        never = simulate(
            k,
            partitioned_baseline(),
            SMConfig(deschedule_latency=25, deschedule_threshold=10_000),
        )
        base = simulate(k, partitioned_baseline())
        assert never.cycles == base.cycles


class TestPriorWorkClaim:
    def test_descheduling_costs_little_on_real_kernels(self, rn):
        # Ref [8]: the two-level scheduler performs like the full one.
        # With a realistic reactivation latency the suite slows by only
        # a few percent (stalled warps had nothing to issue anyway).
        for name in ("bfs", "pcr", "matrixmul"):
            ck = rn.compiled(name)
            a = simulate(ck, partitioned_baseline())
            b = simulate(ck, partitioned_baseline(), SMConfig(deschedule_latency=8))
            assert b.cycles <= a.cycles * 1.06, name
