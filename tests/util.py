"""Shared helpers for building small kernels in tests."""

from __future__ import annotations

from repro.compiler import compile_kernel
from repro.isa import CTATrace, KernelTrace, LaunchConfig, WarpBuilder


def warp_alu_chain(n: int):
    """A fully dependent chain of n ALU ops (latency-bound)."""
    b = WarpBuilder()
    v = b.iconst()
    for _ in range(n - 1):
        v = b.alu(v)
    return b.ops


def warp_alu_independent(n: int):
    """n independent ALU ops (issue-bound)."""
    b = WarpBuilder()
    for _ in range(n):
        b.iconst()
    return b.ops


def warp_streaming_loads(n: int, base: int = 0, stride: int = 128):
    """n coalesced global loads at consecutive lines, each value consumed."""
    b = WarpBuilder()
    for i in range(n):
        line = base + i * stride
        v = b.load_global([line + 4 * t for t in range(32)])
        b.touch(v)
    return b.ops


def warp_with_barriers(n_phases: int, alu_per_phase: int = 4):
    b = WarpBuilder()
    v = b.iconst()
    for _ in range(n_phases):
        for _ in range(alu_per_phase):
            v = b.alu(v)
        b.barrier()
    return b.ops


def single_warp_kernel(ops, name="k", smem_bytes_per_cta=0, num_ctas=1):
    lc = LaunchConfig(
        threads_per_cta=32, num_ctas=num_ctas, smem_bytes_per_cta=smem_bytes_per_cta
    )
    ctas = [CTATrace([list(ops)]) for _ in range(num_ctas)]
    return KernelTrace(name, lc, ctas)


def multi_warp_kernel(warp_ops_list, name="k", smem_bytes_per_cta=0, num_ctas=1):
    lc = LaunchConfig(
        threads_per_cta=32 * len(warp_ops_list),
        num_ctas=num_ctas,
        smem_bytes_per_cta=smem_bytes_per_cta,
    )
    ctas = [CTATrace([list(w) for w in warp_ops_list]) for _ in range(num_ctas)]
    return KernelTrace(name, lc, ctas)


def compiled(trace, regs=None):
    return compile_kernel(trace, regs_per_thread=regs)
