"""Schema, validation, and regression-comparison tests for repro.bench."""

import json

import pytest

from repro.bench.report import (
    SCHEMA,
    BenchEntry,
    compare_payloads,
    load_payload,
    make_payload,
    timed,
    validate_payload,
    write_payload,
)


def _payload(times: dict[str, float]) -> dict:
    entries = [
        BenchEntry(id=i, seconds=s, runs=[s, s * 1.1]) for i, s in times.items()
    ]
    return make_payload(entries, scale="tiny", repeats=2)


def test_payload_is_valid_and_round_trips(tmp_path):
    payload = _payload({"micro.a": 0.5, "sim.b.baseline": 1.0})
    assert validate_payload(payload) == []
    path = write_payload(payload, tmp_path / "BENCH_test.json")
    assert load_payload(path) == payload


def test_validate_rejects_bad_payloads():
    assert validate_payload([]) != []
    assert validate_payload({"schema": "nope", "benchmarks": []})
    payload = _payload({"a": 1.0})
    payload["benchmarks"][0].pop("runs")
    assert any("runs" in e for e in validate_payload(payload))
    dup = _payload({"a": 1.0})
    dup["benchmarks"].append(dict(dup["benchmarks"][0]))
    assert any("duplicate" in e for e in validate_payload(dup))
    neg = _payload({"a": 1.0})
    neg["benchmarks"][0]["seconds"] = -1.0
    assert any("non-negative" in e for e in validate_payload(neg))
    # seconds must be min(runs): an inconsistent summary is a schema error.
    skew = _payload({"a": 1.0})
    skew["benchmarks"][0]["seconds"] = 99.0
    assert any("min(runs)" in e for e in validate_payload(skew))


def test_write_refuses_invalid(tmp_path):
    with pytest.raises(ValueError):
        write_payload({"schema": SCHEMA, "benchmarks": "wrong"},
                      tmp_path / "x.json")


def test_compare_flags_injected_slowdown():
    old = _payload({"micro.banks": 1.0, "suite.small": 10.0})
    new = _payload({"micro.banks": 1.0, "suite.small": 25.0})  # 2.5x slower
    report = compare_payloads(old, new, threshold=1.15)
    assert not report.ok
    assert [r.id for r in report.regressions] == ["suite.small"]
    assert report.regressions[0].ratio == pytest.approx(2.5)
    assert "REGRESSION" in report.format()


def test_compare_within_threshold_is_ok():
    old = _payload({"micro.banks": 1.0})
    new = _payload({"micro.banks": 1.1})
    assert compare_payloads(old, new, threshold=1.15).ok


def test_compare_ignores_sub_noise_floor_entries():
    # 50us -> 100us is a 2x ratio but pure timer jitter; the gate must
    # not fail on entries this small (e.g. suite.exp.table4).
    old = _payload({"suite.exp.table4": 0.00005, "suite.small": 10.0})
    new = _payload({"suite.exp.table4": 0.00010, "suite.small": 10.0})
    report = compare_payloads(old, new, threshold=1.15)
    assert report.ok
    assert "below noise floor" in report.format()
    assert "<< REGRESSION" not in report.format()
    # ...but a slowdown that crosses the floor still counts.
    grown = _payload({"suite.exp.table4": 0.5, "suite.small": 10.0})
    assert not compare_payloads(old, grown, threshold=1.15).ok


def test_compare_handles_disjoint_ids():
    old = _payload({"gone": 1.0, "both": 1.0})
    new = _payload({"added": 2.0, "both": 1.0})
    report = compare_payloads(old, new)
    assert report.ok  # unmatched ids never count as regressions...
    assert report.only_old == [("gone", 1.0)]
    assert report.only_new == [("added", 2.0)]
    # ...but they must be called out explicitly, with their timings,
    # not silently skipped.
    text = report.format()
    assert "removed (1 benchmark(s)" in text
    assert "added (1 benchmark(s)" in text
    assert "gone" in text and "added" in text
    assert "excluded from the regression check" in text


def test_compare_rejects_bad_threshold():
    payload = _payload({"a": 1.0})
    with pytest.raises(ValueError):
        compare_payloads(payload, payload, threshold=0.0)


def test_timed_keeps_best_run_and_merges_meta():
    calls = []

    def fn():
        calls.append(1)
        return {"cycles": 42}

    entry = timed("x", fn, repeats=3, meta={"fixed": True})
    assert len(calls) == 3
    assert len(entry.runs) == 3
    assert entry.seconds == min(entry.runs)
    assert entry.meta == {"fixed": True, "cycles": 42}


def test_cli_compare_flags_slowdown(tmp_path, capsys):
    """`repro bench --compare` exits 1 when a benchmark slowed down."""
    from repro.cli import main

    old = tmp_path / "old.json"
    new = tmp_path / "new.json"
    old.write_text(json.dumps(_payload({"sim.x.baseline": 1.0})))
    new.write_text(json.dumps(_payload({"sim.x.baseline": 3.0})))
    assert main(["bench", "--compare", str(old), str(new)]) == 1
    assert "REGRESSION" in capsys.readouterr().out
    # Same payload on both sides: clean exit.
    assert main(["bench", "--compare", str(old), str(old)]) == 0


def test_cli_validate(tmp_path, capsys):
    from repro.cli import main

    good = tmp_path / "good.json"
    good.write_text(json.dumps(_payload({"a": 1.0})))
    assert main(["bench", "--validate", str(good)]) == 0
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"schema": "other"}))
    assert main(["bench", "--validate", str(bad)]) == 1
