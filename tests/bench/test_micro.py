"""Microbenchmark and CLI smoke tests (tiny scale, single repeat)."""

import json

from repro.bench.micro import bench_cache, bench_coalescer, run_micro
from repro.bench.report import make_payload, validate_payload


def test_component_benches_report_deterministic_meta():
    a = bench_coalescer("tiny", repeats=1)
    b = bench_coalescer("tiny", repeats=1)
    assert [e.meta for e in a] == [e.meta for e in b]
    (cache_entry,) = bench_cache("tiny", repeats=1)
    assert cache_entry.meta["reads"] > 0
    assert 0 < cache_entry.meta["read_hits"] < cache_entry.meta["reads"]


def test_run_micro_payload_validates():
    entries = run_micro("tiny", repeats=1)
    ids = {e.id for e in entries}
    assert {"micro.banks.partitioned", "micro.banks.unified",
            "micro.cache.readwrite", "micro.coalescer.lines",
            "sim.matrixmul.baseline", "sim.vectoradd.unified384",
            "sim.matrixmul.nonblocking"} <= ids
    payload = make_payload(entries, scale="tiny", repeats=1)
    assert validate_payload(payload) == []
    # sim.* entries pin simulated cycles -- the cheap cycle-identity check.
    for e in entries:
        if e.id.startswith("sim."):
            assert e.meta["cycles"] > 0
            assert e.meta["instructions"] > 0


def test_cli_bench_writes_valid_payload(tmp_path, capsys):
    from repro.bench.report import load_payload
    from repro.cli import main

    out = tmp_path / "BENCH_smoke.json"
    rc = main(["bench", "--scale", "tiny", "--repeats", "1", "-q",
               "--only", "micro.coalescer,micro.cache", "--no-suite",
               "--out", str(out)])
    assert rc == 0
    payload = load_payload(out)
    assert {e["id"] for e in payload["benchmarks"]} == {
        "micro.coalescer.lines", "micro.coalescer.sectors",
        "micro.cache.readwrite",
    }
    assert "wrote 3 benchmarks" in capsys.readouterr().out


def test_cli_bench_rejects_empty_selection(tmp_path):
    from repro.cli import main

    rc = main(["bench", "--scale", "tiny", "--repeats", "1", "-q",
               "--only", "nosuch.prefix", "--no-suite",
               "--out", str(tmp_path / "x.json")])
    assert rc == 2


def test_suite_bench_tiny_subset():
    from repro.bench.suite import run_suite

    entries = run_suite("tiny", only=("table4", "figure8"))
    ids = [e.id for e in entries]
    assert ids == ["suite.exp.table4", "suite.exp.figure8", "suite.tiny"]
    total = entries[-1]
    assert total.meta["experiments"] == 2
    assert total.seconds >= max(e.seconds for e in entries[:-1])
