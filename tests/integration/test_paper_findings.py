"""End-to-end checks of the paper's qualitative findings (small scale).

These are the claims the reproduction must preserve in *shape* (who
wins, roughly by how much, where crossovers fall) even though absolute
numbers come from a simplified simulator on scaled inputs.  A shared
module-scoped Runner caches every simulation, so the whole file costs
about a minute.
"""

import pytest

from repro.experiments import figure7, figure8, figure9, figure11, table1, table6
from repro.experiments.runner import Runner
from repro.kernels import BENEFIT_SET, get_benchmark


@pytest.fixture(scope="module")
def rn():
    return Runner("small")


@pytest.fixture(scope="module")
def fig9(rn):
    return figure9.run(runner=rn)


@pytest.fixture(scope="module")
def fig7(rn):
    return figure7.run(runner=rn)


class TestFigure9Headline:
    def test_every_benefit_app_helped_or_neutral(self, fig9):
        for row in fig9.rows:
            assert row.speedup >= 0.99, f"{row.name} hurt by unification"

    def test_needle_has_the_largest_speedup(self, fig9):
        needle = fig9.row("needle").speedup
        assert needle == max(r.speedup for r in fig9.rows)
        # Paper: 70.8%; shape check: well over 40%.
        assert needle > 1.4

    def test_average_speedup_in_paper_ballpark(self, fig9):
        # Paper: average 16.2% across the benefit set.
        assert 1.05 < fig9.mean_speedup < 1.4

    def test_energy_never_increases(self, fig9):
        # Paper: savings of 2.8%..33%.
        for row in fig9.rows:
            assert row.energy_ratio <= 1.01, f"{row.name} energy regressed"
        assert min(r.energy_ratio for r in fig9.rows) < 0.9

    def test_dram_traffic_reduced_for_cache_limited_apps(self, fig9):
        # Paper: reductions up to 32%, dgemm the exception (~1.0).
        for name in ("bfs", "gpu-mummer", "pcr", "ray"):
            assert fig9.row(name).dram_ratio < 0.95
        assert fig9.row("dgemm").dram_ratio == pytest.approx(1.0, abs=0.03)

    def test_speedup_orderings_match_paper(self, fig9):
        # needle >> (lu, gpu-mummer); dgemm > mummer is not claimed --
        # check the robust orderings only.
        assert fig9.row("needle").speedup > fig9.row("lu").speedup
        assert fig9.row("needle").speedup > fig9.row("gpu-mummer").speedup
        assert fig9.row("lu").speedup >= fig9.row("gpu-mummer").speedup - 0.02


class TestFigure7Headline:
    def test_no_benefit_apps_stay_within_a_few_percent(self, fig7):
        # Paper: within 1%; we allow a slightly wider band and record
        # per-benchmark numbers in EXPERIMENTS.md.
        for row in fig7.rows:
            assert 0.95 <= row.perf_ratio <= 1.06, (
                f"{row.name}: unified perf ratio {row.perf_ratio:.3f}"
            )
            assert 0.95 <= row.energy_ratio <= 1.05

    def test_suite_means_are_neutral(self, fig7):
        assert fig7.mean_perf == pytest.approx(1.0, abs=0.02)
        assert fig7.mean_energy == pytest.approx(1.0, abs=0.02)


class TestFigure8Allocations:
    def test_paper_capacity_extremes(self, rn):
        res = figure8.run(runner=rn)
        # Paper: RF ranges from 36 KB (bfs) to 228 KB (dgemm); needle
        # devotes ~264 KB (268 with our padded pitch) to shared memory.
        rf = {r.name: r.rf_kb for r in res.rows}
        assert min(rf, key=rf.get) == "bfs" and rf["bfs"] == pytest.approx(36)
        assert max(rf, key=rf.get) == "dgemm" and rf["dgemm"] == pytest.approx(228)
        assert res.row("needle").smem_kb == pytest.approx(264, rel=0.03)
        for row in res.rows:
            assert row.threads == 1024  # all reach full occupancy at 384 KB


class TestTable6Capacity:
    @pytest.fixture(scope="class")
    def t6(self, rn):
        return table6.run(runner=rn)

    def test_register_limited_apps_hurt_at_128kb(self, t6):
        # Paper: dgemm and pcr at 0.77; direction must hold.
        assert t6.row("dgemm").perf[0] < 1.0
        assert t6.row("ray").perf[0] < 1.0

    def test_needle_peaks_at_256kb(self, t6):
        # Paper: 1.75 at 256 KB vs 1.71 at 384 KB (scheduling effects).
        perf = t6.row("needle").perf
        assert perf[1] >= perf[2] > perf[0]

    def test_no_benefit_energy_lowest_at_128kb(self, t6):
        energy = t6.row("no-benefit avg").energy
        assert energy[0] == min(energy)

    def test_perf_generally_monotone_with_capacity(self, t6):
        for row in t6.rows:
            if row.name in ("needle", "no-benefit avg"):
                continue
            assert row.perf[0] <= row.perf[1] + 0.02
            assert row.perf[1] <= row.perf[2] + 0.02


class TestTable1Characterisation:
    def test_streaming_apps_quadruple_dram_uncached(self, rn):
        res = table1.run(runner=rn, benchmarks=["vectoradd", "matrixmul"])
        for name in ("vectoradd", "matrixmul"):
            assert res.row(name).dram_normalized[0] > 2.5

    def test_nn_has_extreme_uncached_blowup(self, rn):
        res = table1.run(runner=rn, benchmarks=["nn"])
        # Paper: 20.81x; shape: far beyond the streaming apps.
        assert res.row("nn").dram_normalized[0] > 6

    def test_cache_limited_apps_improve_from_64_to_256(self, rn):
        res = table1.run(runner=rn, benchmarks=["bfs", "pcr"])
        for name in ("bfs", "pcr"):
            row = res.row(name)
            assert row.dram_normalized[1] > 1.02  # 64 KB worse than 256 KB

    def test_register_targets_match_table1_exactly(self, rn):
        res = table1.run(runner=rn)
        for row in res.rows:
            assert row.regs_per_thread == get_benchmark(row.name).paper_regs


class TestFigure11Tuning:
    def test_blocking_factor_crossover(self, rn):
        res = figure11.run(runner=rn)
        # On a 64 KB scratchpad, bf=32 is the paper's efficient point;
        # with hundreds of KB, bf=64 configurations become available and
        # competitive while needing fewer CTAs.
        small_budget = res.best(max_smem_kb=64)
        assert small_budget.blocking_factor in (16, 32)
        big_budget = res.best(max_smem_kb=520)
        assert big_budget.normalized_perf >= small_budget.normalized_perf

    def test_more_threads_need_more_smem(self, rn):
        res = figure11.run(runner=rn)
        for bf in (16, 32):
            line = res.line(bf)
            smem = [p.smem_kb for p in line]
            assert smem == sorted(smem)


class TestBenefitSetCoverage:
    def test_all_eight_simulated(self, fig9):
        assert {r.name for r in fig9.rows} == set(BENEFIT_SET)
