"""Full-fidelity golden regression: every SimResult field, bit-exact.

Complements test_golden.py (which pins only cycles / DRAM accesses):
these fixtures serialize *entire* seed SimResults -- cycles, conflict
histogram, cache stats, energy counts, stall totals -- for 6 kernels x
3 designs, and any simulator change must reproduce them exactly.  This
is the cycle-identity contract performance work on the hot loop is held
to (docs/performance.md); regenerate via tests/golden/generate.py only
for deliberate model changes.
"""

import json
from pathlib import Path

import pytest

from repro.experiments.runner import Runner
from repro.sm.serialize import result_from_dict, result_to_dict

GOLDEN_DIR = Path(__file__).parent.parent / "golden"
CASES = sorted(p.name for p in GOLDEN_DIR.glob("*__*.json"))


@pytest.fixture(scope="module")
def rn():
    return Runner("tiny")


def test_fixture_set_is_complete():
    # >= 4 kernels x 3 partitions, per the regression-harness contract.
    kernels = {name.split("__")[0] for name in CASES}
    designs = {name.split("__")[1].removesuffix(".json") for name in CASES}
    assert len(kernels) >= 4, kernels
    assert designs == {"baseline", "fermi0", "unified384"}
    assert len(CASES) == len(kernels) * len(designs)


@pytest.mark.parametrize("case", CASES)
def test_golden_result_exact(case, rn):
    from tests.golden.generate import case_result

    stored = json.loads((GOLDEN_DIR / case).read_text())
    kernel, design = case.removesuffix(".json").split("__")
    result = case_result(rn, kernel, design)
    got = result_to_dict(result)
    assert got == stored, (
        f"{case}: simulated result diverged from the seed simulator; "
        "if the model change is deliberate, rerun tests/golden/generate.py"
    )
    # The fixture itself must round-trip through the serializer.
    assert result_to_dict(result_from_dict(stored)) == stored
