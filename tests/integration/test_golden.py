"""Golden regression pins.

Exact tiny-scale cycle and DRAM-access counts for representative
benchmarks under the baseline and the 384 KB unified design.  The
simulator is fully deterministic, so these must match to the cycle; a
deliberate model change should update them consciously (and re-check
EXPERIMENTS.md), while an accidental behavioural change fails here
first.
"""

import pytest

from repro.experiments.runner import Runner

#: (benchmark, baseline cycles, baseline DRAM accesses, unified cycles)
GOLDEN = [
    ("vectoradd", 6369, 384, 6369),
    ("needle", 15988, 384, 15964),
    ("dgemm", 27902, 1092, 27902),
    ("bfs", 20663, 3833, 20671),
    ("pcr", 3852, 176, 3848),
    ("aes", 7919, 264, 7907),
]


@pytest.fixture(scope="module")
def rn():
    return Runner("tiny")


@pytest.mark.parametrize("name,base_cycles,base_dram,uni_cycles", GOLDEN)
def test_golden(name, base_cycles, base_dram, uni_cycles, rn):
    base = rn.baseline(name)
    assert base.cycles == base_cycles, (
        f"{name}: baseline cycles moved {base_cycles} -> {base.cycles:.0f}; "
        "if the model change is intentional, refresh GOLDEN and EXPERIMENTS.md"
    )
    assert base.dram_accesses == base_dram
    uni, _ = rn.unified(name)
    assert uni.cycles == uni_cycles
