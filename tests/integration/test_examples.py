"""Smoke tests: every example script runs end-to-end at tiny scale.

Guards the documented entry points against bit-rot; each example is run
as a subprocess exactly as a user would.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, *args: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "vectoradd", "tiny")
        assert "baseline" in out
        assert "unified" in out
        assert "speedup" in out

    def test_quickstart_needle(self):
        out = run_example("quickstart.py", "needle", "tiny")
        assert "chosen unified split" in out

    def test_design_space_exploration(self):
        out = run_example("design_space_exploration.py", "bfs", "tiny")
        assert "lowest-energy capacity" in out
        assert "within 2% of peak" in out

    def test_custom_kernel(self):
        out = run_example("custom_kernel.py")
        assert "histogram" in out
        assert "allocator chose" in out

    def test_needle_tuning(self):
        out = run_example("needle_tuning.py", "tiny")
        assert "best configuration per shared-memory budget" in out

    def test_multi_kernel_app(self):
        out = run_example("multi_kernel_app.py", "tiny")
        assert "per-kernel repartitioning speedup" in out
        assert "[repartitioned]" in out

    def test_emulated_kernel(self):
        out = run_example("emulated_kernel.py")
        assert "warp instructions emulated" in out
        assert "divergent masks" in out
