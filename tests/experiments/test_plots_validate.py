"""Tests for ASCII plotting and the validation scorecard."""

import pytest

from repro.experiments import figure4, figure11, plots, validate
from repro.experiments.runner import Runner


@pytest.fixture(scope="module")
def rn():
    return Runner("tiny")


class TestAsciiPlot:
    def test_basic_render(self):
        out = plots.ascii_plot(
            {"a": [(0, 0), (1, 1)], "b": [(0, 1), (1, 0)]},
            width=20,
            height=5,
            title="T",
            x_label="x",
            y_label="y",
        )
        assert "T" in out
        assert "o a" in out and "x b" in out
        assert "(y: y)" in out
        # Grid rows plus axes and legend.
        assert len(out.splitlines()) >= 8

    def test_extremes_mapped_to_corners(self):
        out = plots.ascii_plot({"s": [(0, 0), (10, 5)]}, width=10, height=4)
        lines = out.splitlines()
        assert lines[0].endswith("o")  # max y, max x: top-right
        assert "o" in lines[3]  # min point on the bottom row

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            plots.ascii_plot({})

    def test_constant_series_does_not_crash(self):
        out = plots.ascii_plot({"flat": [(0, 1), (1, 1), (2, 1)]})
        assert "o" in out

    def test_figure_helpers(self, rn):
        f4 = figure4.run(runner=rn, benchmarks=("bfs",), thread_lines=(256, 1024))
        assert "cache KB" in plots.plot_figure4(f4, "bfs")
        f11 = figure11.run(runner=rn, thread_points=(64, 128))
        assert "blocking factors" in plots.plot_figure11(f11)


class TestScorecard:
    def test_tiny_scorecard_structure(self, rn):
        card = validate.run(runner=rn)
        assert len(card.checks) == 11
        assert "scorecard" in card.format()
        # The capacity-independent checks must hold even at tiny scale.
        by_claim = {c.claim: c for c in card.checks}
        assert by_claim["SRAM energies match Table 4"].passed
        assert by_claim["bfs allocates the smallest RF"].passed
        assert by_claim["dgemm allocates the largest RF"].passed

    def test_score_string(self, rn):
        card = validate.run(runner=rn)
        done, total = card.score.split("/")
        assert int(total) == 11
        assert 0 <= int(done) <= 11
