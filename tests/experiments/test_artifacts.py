"""DiskCache behaviour: hits, misses, corruption, staleness, atomicity."""

import json

from repro.experiments.artifacts import DiskCache, cache_key_digest
from repro.experiments.runner import Runner
from repro.kernels import get_benchmark


class TestKeyDigest:
    def test_deterministic_and_order_insensitive(self):
        a = cache_key_digest(("sim", 1, {"b": 2, "a": 1}))
        b = cache_key_digest(("sim", 1, {"a": 1, "b": 2}))
        assert a == b
        assert len(a) == 64

    def test_version_changes_the_path(self, tmp_path):
        # A format bump must map to a different file, never a mis-read.
        cache = DiskCache(tmp_path)
        k1 = ("sim", 1, "needle")
        k2 = ("sim", 2, "needle")
        assert cache.result_path(k1) != cache.result_path(k2)


class TestTraceEntries:
    def test_round_trip(self, tmp_path):
        cache = DiskCache(tmp_path)
        trace = get_benchmark("vectoradd").build("tiny")
        cache.put_trace(("t", 1), trace)
        back = cache.get_trace(("t", 1))
        assert back is not None
        assert back.name == trace.name
        assert back.total_ops == trace.total_ops
        assert back.launch == trace.launch
        assert cache.stats.trace_hits == 1

    def test_miss_counted(self, tmp_path):
        cache = DiskCache(tmp_path)
        assert cache.get_trace(("absent",)) is None
        assert cache.stats.trace_misses == 1

    def test_corrupt_entry_dropped_and_regenerated(self, tmp_path):
        cache = DiskCache(tmp_path)
        key = ("t", 1)
        cache.put_trace(key, get_benchmark("vectoradd").build("tiny"))
        cache.trace_path(key).write_bytes(b"not an npz file")
        assert cache.get_trace(key) is None  # dropped, not crashed
        assert cache.stats.invalidated == 1
        assert not cache.trace_path(key).exists()


class TestResultEntries:
    def test_round_trip(self, tmp_path):
        cache = DiskCache(tmp_path)
        result = Runner("tiny").baseline("vectoradd")
        cache.put_result(("r", 1), result)
        assert cache.get_result(("r", 1)) == result

    def test_truncated_json_dropped(self, tmp_path):
        cache = DiskCache(tmp_path)
        result = Runner("tiny").baseline("vectoradd")
        cache.put_result(("r", 1), result)
        path = cache.result_path(("r", 1))
        path.write_text(path.read_text()[:40])  # simulate a killed writer
        assert cache.get_result(("r", 1)) is None
        assert cache.stats.invalidated == 1

    def test_stale_schema_version_dropped(self, tmp_path):
        cache = DiskCache(tmp_path)
        result = Runner("tiny").baseline("vectoradd")
        cache.put_result(("r", 1), result)
        path = cache.result_path(("r", 1))
        payload = json.loads(path.read_text())
        payload["version"] = 999
        path.write_text(json.dumps(payload))
        assert cache.get_result(("r", 1)) is None
        assert cache.stats.invalidated == 1


class TestMetaEntries:
    def test_round_trip(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put_meta(("m",), {"x": 1})
        assert cache.get_meta(("m",)) == {"x": 1}

    def test_non_object_payload_dropped(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put_meta(("m",), {"x": 1})
        cache.meta_path(("m",)).write_text("[1, 2]")
        assert cache.get_meta(("m",)) is None
        assert cache.stats.invalidated == 1


class TestStats:
    def test_summary_mentions_regeneration(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put_meta(("m",), {"x": 1})
        cache.meta_path(("m",)).write_text("garbage")
        cache.get_meta(("m",))
        s = cache.stats.summary()
        assert "regenerated" in s
        assert cache.stats.hits == 0 and cache.stats.misses == 1

    def test_entry_count_ignores_temp_files(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put_meta(("m",), {"x": 1})
        (tmp_path / "meta" / ".1234-leftover.json").write_text("{}")
        assert cache.entry_count() == {"traces": 0, "results": 0, "meta": 1}


class TestRunnerIntegration:
    def test_fresh_runner_reuses_disk_artifacts(self, tmp_path):
        cold = Runner("tiny", cache=DiskCache(tmp_path))
        ref = cold.baseline("vectoradd")
        warm = Runner("tiny", cache=DiskCache(tmp_path))
        assert warm.baseline("vectoradd") == ref
        assert warm.cache.stats.result_hits == 1
        # The sim was answered from disk: no trace rebuild either way.
        assert warm.cache.stats.trace_misses == 0

    def test_corrupted_entry_recomputed_transparently(self, tmp_path):
        cold = Runner("tiny", cache=DiskCache(tmp_path))
        ref = cold.baseline("vectoradd")
        cache = DiskCache(tmp_path)
        key = cold._sim_disk_key(cold.sim_key("vectoradd", ref.partition))
        cache.result_path(key).write_text("garbage")
        warm = Runner("tiny", cache=cache)
        assert warm.baseline("vectoradd") == ref
        assert cache.stats.invalidated == 1
