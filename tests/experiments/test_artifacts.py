"""DiskCache behaviour: hits, misses, corruption, staleness, atomicity."""

import json

from repro.experiments.artifacts import DiskCache, cache_key_digest
from repro.experiments.runner import Runner
from repro.kernels import get_benchmark


class TestKeyDigest:
    def test_deterministic_and_order_insensitive(self):
        a = cache_key_digest(("sim", 1, {"b": 2, "a": 1}))
        b = cache_key_digest(("sim", 1, {"a": 1, "b": 2}))
        assert a == b
        assert len(a) == 64

    def test_version_changes_the_path(self, tmp_path):
        # A format bump must map to a different file, never a mis-read.
        cache = DiskCache(tmp_path)
        k1 = ("sim", 1, "needle")
        k2 = ("sim", 2, "needle")
        assert cache.result_path(k1) != cache.result_path(k2)


class TestTraceEntries:
    def test_round_trip(self, tmp_path):
        cache = DiskCache(tmp_path)
        trace = get_benchmark("vectoradd").build("tiny")
        cache.put_trace(("t", 1), trace)
        back = cache.get_trace(("t", 1))
        assert back is not None
        assert back.name == trace.name
        assert back.total_ops == trace.total_ops
        assert back.launch == trace.launch
        assert cache.stats.trace_hits == 1

    def test_miss_counted(self, tmp_path):
        cache = DiskCache(tmp_path)
        assert cache.get_trace(("absent",)) is None
        assert cache.stats.trace_misses == 1

    def test_corrupt_entry_dropped_and_regenerated(self, tmp_path):
        cache = DiskCache(tmp_path)
        key = ("t", 1)
        cache.put_trace(key, get_benchmark("vectoradd").build("tiny"))
        cache.trace_path(key).write_bytes(b"not an npz file")
        assert cache.get_trace(key) is None  # dropped, not crashed
        assert cache.stats.invalidated == 1
        assert not cache.trace_path(key).exists()


class TestResultEntries:
    def test_round_trip(self, tmp_path):
        cache = DiskCache(tmp_path)
        result = Runner("tiny").baseline("vectoradd")
        cache.put_result(("r", 1), result)
        assert cache.get_result(("r", 1)) == result

    def test_truncated_json_dropped(self, tmp_path):
        cache = DiskCache(tmp_path)
        result = Runner("tiny").baseline("vectoradd")
        cache.put_result(("r", 1), result)
        path = cache.result_path(("r", 1))
        path.write_text(path.read_text()[:40])  # simulate a killed writer
        assert cache.get_result(("r", 1)) is None
        assert cache.stats.invalidated == 1

    def test_stale_schema_version_dropped(self, tmp_path):
        cache = DiskCache(tmp_path)
        result = Runner("tiny").baseline("vectoradd")
        cache.put_result(("r", 1), result)
        path = cache.result_path(("r", 1))
        payload = json.loads(path.read_text())
        payload["version"] = 999
        path.write_text(json.dumps(payload))
        assert cache.get_result(("r", 1)) is None
        assert cache.stats.invalidated == 1


class TestMetaEntries:
    def test_round_trip(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put_meta(("m",), {"x": 1})
        assert cache.get_meta(("m",)) == {"x": 1}

    def test_non_object_payload_dropped(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put_meta(("m",), {"x": 1})
        cache.meta_path(("m",)).write_text("[1, 2]")
        assert cache.get_meta(("m",)) is None
        assert cache.stats.invalidated == 1


class TestStats:
    def test_summary_mentions_regeneration(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put_meta(("m",), {"x": 1})
        cache.meta_path(("m",)).write_text("garbage")
        cache.get_meta(("m",))
        s = cache.stats.summary()
        assert "regenerated" in s
        assert cache.stats.hits == 0 and cache.stats.misses == 1

    def test_entry_count_ignores_temp_files(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put_meta(("m",), {"x": 1})
        (tmp_path / "meta" / ".1234-leftover.json").write_text("{}")
        assert cache.entry_count() == {"traces": 0, "results": 0, "meta": 1}


class TestRunnerIntegration:
    def test_fresh_runner_reuses_disk_artifacts(self, tmp_path):
        cold = Runner("tiny", cache=DiskCache(tmp_path))
        ref = cold.baseline("vectoradd")
        warm = Runner("tiny", cache=DiskCache(tmp_path))
        assert warm.baseline("vectoradd") == ref
        assert warm.cache.stats.result_hits == 1
        # The sim was answered from disk: no trace rebuild either way.
        assert warm.cache.stats.trace_misses == 0

    def test_corrupted_entry_recomputed_transparently(self, tmp_path):
        cold = Runner("tiny", cache=DiskCache(tmp_path))
        ref = cold.baseline("vectoradd")
        cache = DiskCache(tmp_path)
        key = cold._sim_disk_key(cold.sim_key("vectoradd", ref.partition))
        cache.result_path(key).write_text("garbage")
        warm = Runner("tiny", cache=cache)
        assert warm.baseline("vectoradd") == ref
        assert cache.stats.invalidated == 1


class TestManifestCollisions:
    """Same-second manifest/span writes must uniquify, not clobber."""

    def _manifest(self, created_unix=1700000000.0, command="repro suite"):
        from repro.experiments.runner import config_fingerprint
        from repro.obs.manifest import build_run_manifest
        from repro.sm import SMConfig

        m = build_run_manifest(command=command, scale="tiny",
                               config=SMConfig(), jobs=1)
        m["created_unix"] = created_unix  # pin the timestamp second
        return m

    def test_distinct_manifests_in_same_second_both_survive(self, tmp_path):
        cache = DiskCache(tmp_path)
        # Same wall-clock second but different content: the default
        # name collides only if the digest does too, so force it by
        # writing the *same* name twice via identical payloads first.
        a = self._manifest(command="repro suite --jobs 1")
        p1 = cache.put_manifest(a)
        p2 = cache.put_manifest(a)  # identical name: must uniquify
        assert p1 != p2
        assert p2.name == f"{p1.stem}-2{p1.suffix}"
        assert p1.exists() and p2.exists()
        assert len(cache.manifest_paths()) == 2

    def test_many_collisions_keep_counting_up(self, tmp_path):
        cache = DiskCache(tmp_path)
        m = self._manifest()
        paths = [cache.put_manifest(m) for _ in range(4)]
        assert len({p.name for p in paths}) == 4
        assert paths[3].name.endswith("-4.json")


class TestSpansStore:
    def _payload(self):
        from repro.obs.spans import SpanRecorder

        rec = SpanRecorder(command="repro suite --spans")
        submit = rec.phase_start("p", workers=1)
        class _J:
            kind = "baseline"
            benchmark = "x"
            def describe(self):
                return "baseline x"
        rec.record_job(job=_J(), index=0, submit=submit, start=submit,
                       end=submit + 1.0, worker=1)
        rec.phase_end()
        return rec.to_payload()

    def test_put_spans_persists_and_indexes(self, tmp_path):
        from repro.obs.spans import validate_spans

        cache = DiskCache(tmp_path)
        payload = self._payload()
        path = cache.put_spans(payload)
        assert path.parent.name == "spans"
        assert not validate_spans(json.loads(path.read_text()))
        assert cache.spans_paths() == [path]
        index = json.loads((tmp_path / "spans" / "index.json").read_text())
        assert index[0]["file"] == path.name
        assert index[0]["phases"] == ["p"]

    def test_same_second_span_logs_uniquify_and_index_appends(self, tmp_path):
        cache = DiskCache(tmp_path)
        payload = self._payload()
        p1 = cache.put_spans(payload)
        p2 = cache.put_spans(payload)
        assert p1 != p2
        assert len(cache.spans_paths()) == 2
        index = json.loads((tmp_path / "spans" / "index.json").read_text())
        assert [e["file"] for e in index] == [p1.name, p2.name]

    def test_corrupt_index_rebuilt_not_crashed(self, tmp_path):
        cache = DiskCache(tmp_path)
        (tmp_path / "spans").mkdir()
        (tmp_path / "spans" / "index.json").write_text("not json")
        path = cache.put_spans(self._payload())
        index = json.loads((tmp_path / "spans" / "index.json").read_text())
        assert [e["file"] for e in index] == [path.name]
