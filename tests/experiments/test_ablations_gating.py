"""Tests for the ablation and power-gating experiments."""

import pytest

from repro.experiments import ablations, gating
from repro.experiments.runner import Runner


@pytest.fixture(scope="module")
def rn():
    return Runner("tiny")


class TestClusterPortAblation:
    def test_strict_port_never_faster(self, rn):
        res = ablations.run_cluster_port(
            runner=rn, benchmarks=("needle", "aes", "pcr", "vectoradd")
        )
        for row in res.rows:
            assert row.delta >= -0.001, f"{row.name}: strict port sped things up?"
        # The restriction matters somewhere (scatter-heavy kernels)...
        assert any(r.delta > 0.005 for r in res.rows)
        # ...but stays small on average, like the paper's 0.5% finding.
        assert res.mean_delta < 0.10

    def test_conflict_counters_recorded(self, rn):
        res = ablations.run_cluster_port(runner=rn, benchmarks=("needle",))
        row = res.row("needle")
        assert row.extra["strict_conflicts"] >= row.extra["default_conflicts"]


class TestHierarchyAblation:
    def test_mrf_traffic_multiplies_without_hierarchy(self, rn):
        # ALU-chained kernels lose the most (paper: ~60% MRF reduction);
        # gather-dominated kernels like bfs lose less but never gain.
        res = ablations.run_no_hierarchy(runner=rn, benchmarks=("needle", "pcr", "bfs"))
        needle = res.row("needle")
        assert needle.extra["mrf_reads_without"] > 2 * needle.extra["mrf_reads_with"]
        for row in res.rows:
            assert row.extra["mrf_reads_without"] >= row.extra["mrf_reads_with"]

    def test_conflicts_increase_without_hierarchy(self, rn):
        res = ablations.run_no_hierarchy(runner=rn, benchmarks=("needle",))
        row = res.row("needle")
        assert row.extra["conflicts_without"] > row.extra["conflicts_with"]

    def test_format(self, rn):
        res = ablations.run_no_hierarchy(runner=rn, benchmarks=("needle",))
        assert "hierarchy" in res.format()


class TestBarrierLatencyAblation:
    def test_full_occupancy_kernels_insensitive(self, rn):
        res = ablations.run_barrier_latency(
            runner=rn, benchmarks=("matrixmul",), latencies=(0, 96)
        )
        assert abs(res.row("matrixmul").delta) < 0.05


class TestGating:
    def test_gated_energy_never_worse_than_unified(self, rn):
        res = gating.run(runner=rn, benchmarks=("bfs", "vectoradd", "needle"))
        for row in res.rows:
            assert row.gated_energy <= row.unified_energy + 1e-9
        assert res.mean_gated_energy < res.mean_unified_energy

    def test_chosen_capacity_within_grid(self, rn):
        res = gating.run(runner=rn, benchmarks=("nn",))
        assert res.row("nn").chosen_kb in gating.CAPACITY_GRID_KB

    def test_format(self, rn):
        res = gating.run(runner=rn, benchmarks=("bfs",))
        assert "Power-gating" in res.format()


class TestOrfSizeAblation:
    def test_knee_at_four_entries(self, rn):
        res = ablations.run_orf_size(runner=rn, benchmarks=("needle",))
        reads = res.row("needle").extra["mrf_reads"]
        assert reads[1] > reads[4]  # growing the ORF cuts MRF traffic...
        assert reads[4] == reads[8]  # ...with nothing left beyond 4 (needle)

    def test_monotone_nonincreasing(self, rn):
        res = ablations.run_orf_size(runner=rn, benchmarks=("pcr", "sgemv"))
        for row in res.rows:
            reads = [row.extra["mrf_reads"][s] for s in (1, 2, 4, 8)]
            assert reads == sorted(reads, reverse=True)


class TestCacheAssociativityAblation:
    def test_direct_mapped_never_faster(self, rn):
        res = ablations.run_cache_associativity(
            runner=rn, benchmarks=("gpu-mummer", "bfs")
        )
        for row in res.rows:
            assert row.delta <= 0.001  # 4-way <= 1-way runtime
            misses = row.extra["read_misses"]
            assert misses[4] <= misses[1]
