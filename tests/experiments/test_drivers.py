"""Structural tests for the experiment drivers (tiny scale, subsets)."""

import math

import pytest

from repro.experiments import (
    figure2,
    figure3,
    figure4,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    table1,
    table4,
    table5,
    table6,
)
from repro.experiments.runner import Runner


@pytest.fixture(scope="module")
def rn():
    return Runner("tiny")


class TestTable1:
    def test_rows_and_format(self, rn):
        res = table1.run(runner=rn, benchmarks=["vectoradd", "dgemm"])
        assert len(res.rows) == 2
        row = res.row("dgemm")
        assert row.regs_per_thread == 57
        # Spill overhead decreases monotonically with more registers.
        assert list(row.spill_overhead) == sorted(row.spill_overhead, reverse=True)
        assert row.spill_overhead[-1] == 1.0
        assert row.rf_full_occupancy_kb == 228
        assert "Table 1" in res.format()

    def test_dram_normalised_to_largest_cache(self, rn):
        res = table1.run(runner=rn, benchmarks=["vectoradd"])
        row = res.row("vectoradd")
        assert row.dram_normalized[-1] == 1.0
        # Streaming kernel: ~4x accesses uncached (sector vs line).
        assert row.dram_normalized[0] > 2.0


class TestFigure2:
    def test_normalisation_and_spill_penalty(self, rn):
        res = figure2.run(runner=rn, benchmarks=("dgemm",))
        ref = res.point("dgemm", 64, 1024)
        assert ref.normalized_perf == pytest.approx(1.0)
        spilled = res.point("dgemm", 18, 1024)
        if not math.isnan(spilled.normalized_perf):
            assert spilled.normalized_perf < ref.normalized_perf


class TestFigure3:
    def test_needle_line_monotone_smem(self, rn):
        res = figure3.run(runner=rn, benchmarks=("needle",))
        line = res.line("needle")
        assert len(line) >= 2
        smems = [p.smem_kb for p in line]
        assert smems == sorted(smems)
        assert "Figure 3" in res.format()


class TestFigure4:
    def test_lines_per_thread_count(self, rn):
        res = figure4.run(runner=rn, benchmarks=("bfs",), thread_lines=(256, 1024))
        for t in (256, 1024):
            line = res.line("bfs", t)
            assert [p.cache_kb for p in line] == list(figure4.CACHE_POINTS_KB)
        # DRAM accesses never increase with a bigger cache.
        for t in (256, 1024):
            drams = [p.dram_accesses for p in res.line("bfs", t)]
            assert drams == sorted(drams, reverse=True)


class TestTable4:
    def test_within_five_percent_of_paper(self):
        res = table4.run()
        assert res.max_relative_error() < 0.05
        assert "Table 4" in res.format()


class TestTable5:
    def test_fractions_sum_to_one(self, rn):
        res = table5.run(runner=rn, benchmarks=("vectoradd", "aes"))
        for hist in (res.partitioned, res.unified):
            assert sum(hist.fractions().values()) == pytest.approx(1.0)
        assert "Table 5" in res.format()


class TestFigure7:
    def test_rows_cover_requested_benchmarks(self, rn):
        res = figure7.run(runner=rn, benchmarks=("vectoradd", "nn"))
        assert {r.name for r in res.rows} == {"vectoradd", "nn"}
        assert res.mean_perf == pytest.approx(1.0, abs=0.05)


class TestFigure8:
    def test_partitions_sum_to_total(self, rn):
        res = figure8.run(runner=rn, benchmarks=("bfs", "dgemm"))
        for row in res.rows:
            assert row.rf_kb + row.smem_kb + row.cache_kb == pytest.approx(384)
        assert res.row("bfs").rf_kb == pytest.approx(36)
        assert res.row("dgemm").rf_kb == pytest.approx(228)


class TestFigure9:
    def test_speedups_positive(self, rn):
        res = figure9.run(runner=rn, benchmarks=("needle",))
        assert res.row("needle").speedup > 0
        assert "Figure 9" in res.format()


class TestFigure10:
    def test_fermi_choice_recorded(self, rn):
        res = figure10.run(runner=rn, benchmarks=("bfs",))
        row = res.row("bfs")
        assert (row.chosen_smem_kb, row.chosen_cache_kb) in {(96, 32), (32, 96)}


class TestTable6:
    def test_capacity_columns(self, rn):
        res = table6.run(runner=rn, benchmarks=("bfs",), no_benefit=("vectoradd",))
        row = res.row("bfs")
        assert len(row.perf) == len(table6.CAPACITIES_KB)
        avg = res.row("no-benefit avg")
        assert avg.perf[2] == pytest.approx(1.0, abs=0.05)


class TestFigure11:
    def test_lines_and_best(self, rn):
        res = figure11.run(runner=rn, thread_points=(64, 128, 256))
        assert res.line(16) and res.line(32)
        best_small = res.best(max_smem_kb=20)
        assert best_small.blocking_factor == 16  # only bf16 fits tiny scratch
        assert "Figure 11" in res.format()
