"""Executor behaviour: determinism, journaling, expected errors, variants.

The fork-pool path itself is exercised with ``jobs=4`` on the tiny
scale; every assertion compares against the plain serial Runner, which
is the executor's correctness contract (``--jobs N`` must be
output-identical to ``--jobs 1``).
"""

import pytest

from repro.experiments import figure7, table6
from repro.experiments.artifacts import DiskCache
from repro.experiments.executor import (
    Executor,
    Job,
    register_job_kind,
)
from repro.experiments.runner import Runner, config_fingerprint
from repro.core import AllocationError
from repro.sm import SMConfig

BENCH = ("vectoradd", "scalarprod")


class TestJob:
    def test_describe_names_everything(self):
        job = Job("unified", "needle", total_kb=256, regs=18, thread_target=512,
                  params=(("blocking_factor", 16),))
        d = job.describe()
        for bit in ("unified", "needle", "256KB", "regs=18", "threads=512",
                    "blocking_factor=16"):
            assert bit in d

    def test_jobs_below_one_rejected(self):
        with pytest.raises(ValueError):
            Executor(Runner("tiny"), jobs=0)


class TestSerialPrime:
    def test_warms_runner_memo(self):
        rn = Runner("tiny")
        ex = Executor(rn, jobs=1)
        report = ex.prime([Job("baseline", b) for b in BENCH], label="t")
        assert len(report.outcomes) == 2
        assert not report.errors
        assert len(rn._sims) == 2  # replay is now memo-only

    def test_expected_error_memoised_not_raised(self):
        rn = Runner("tiny")
        ex = Executor(rn, jobs=1)
        # 8 KB cannot fit any kernel: the allocator refuses.
        report = ex.prime([Job("unified", "vectoradd", total_kb=8)])
        assert len(report.errors) == 1
        assert "AllocationError" in report.errors[0].error
        # The refusal replays from the memo, without re-deriving it.
        with pytest.raises(AllocationError):
            rn.unified("vectoradd", total_kb=8)

    def test_custom_job_kind(self):
        calls = []

        @register_job_kind("test-kind")
        def _handler(rn, job):
            calls.append(job.benchmark)

        ex = Executor(Runner("tiny"), jobs=1)
        ex.prime([Job("test-kind", "x")])
        assert calls == ["x"]

    def test_report_format_mentions_label_and_jobs(self):
        ex = Executor(Runner("tiny"), jobs=1)
        report = ex.prime([Job("baseline", "vectoradd")], label="mylabel")
        assert "mylabel" in report.format()
        assert "1 jobs" in report.format()
        assert "mylabel" in ex.summary()


class TestForkedPrime:
    def test_parallel_results_identical_to_serial(self):
        serial = figure7.run(runner=Runner("tiny"), benchmarks=BENCH)
        ex = Executor(Runner("tiny"), jobs=4)
        parallel = figure7.run(executor=ex, benchmarks=BENCH)
        assert parallel.format() == serial.format()
        report = ex.reports[0]
        assert report.workers > 1
        assert len(report.outcomes) == len(figure7.jobs(BENCH))

    def test_parallel_expected_errors_adopted(self):
        # 8 KB fits nothing: workers journal the refusal and the parent
        # replays it from the memo without re-deriving the allocation.
        ex = Executor(Runner("tiny"), jobs=2)
        report = ex.prime([Job("unified", b, total_kb=8) for b in BENCH])
        assert len(report.errors) == 2
        assert ex.runner._alloc_errors  # refusal shipped via journal
        with pytest.raises(AllocationError):
            ex.runner.unified("vectoradd", total_kb=8)

    def test_parallel_table6_matches_serial(self):
        serial = table6.run(
            runner=Runner("tiny"), benchmarks=("dgemm",), no_benefit=()
        )
        ex = Executor(Runner("tiny"), jobs=2)
        parallel = table6.run(executor=ex, benchmarks=("dgemm",), no_benefit=())
        assert parallel.format() == serial.format()

    def test_parallel_with_shared_disk_cache(self, tmp_path):
        serial = figure7.run(runner=Runner("tiny"), benchmarks=BENCH)
        ex = Executor(Runner("tiny", cache=DiskCache(tmp_path)), jobs=4)
        assert figure7.run(executor=ex, benchmarks=BENCH).format() == serial.format()
        # A later run in a fresh process answers entirely from disk.
        warm = Executor(Runner("tiny", cache=DiskCache(tmp_path)), jobs=1)
        assert figure7.run(executor=warm, benchmarks=BENCH).format() == serial.format()
        assert warm.runner.cache.stats.result_hits > 0
        assert warm.runner.cache.stats.result_misses == 0


class TestJournal:
    def test_adoption_transfers_results(self):
        src = Runner("tiny")
        src.journal_reset()
        ref = src.baseline("vectoradd")
        entries = src.journal_reset()
        assert {kind for kind, _, _ in entries} == {"sim", "summary", "engine"}

        dst = Runner("tiny")
        dst.adopt(entries)
        assert dst.baseline("vectoradd") is ref  # memo hit, no simulation

    def test_adoption_is_idempotent(self):
        src = Runner("tiny")
        src.journal_reset()
        ref = src.baseline("vectoradd")
        entries = src.journal_reset()
        dst = Runner("tiny")
        dst.adopt(entries)
        dst.adopt(entries)
        assert dst.baseline("vectoradd") is ref


class TestConfigVariants:
    def test_sim_keys_differ_across_configs(self):
        rn = Runner("tiny")
        variant = rn.variant(SMConfig(cache_assoc=2))
        part = rn.baseline("vectoradd").partition
        assert rn.sim_key("vectoradd", part) != variant.sim_key("vectoradd", part)
        assert config_fingerprint(rn.config) != config_fingerprint(variant.config)

    def test_variant_shares_traces_but_not_sim_results(self):
        rn = Runner("tiny")
        base = rn.baseline("vectoradd")
        variant = rn.variant(SMConfig(barrier_latency=999))
        other = variant.baseline("vectoradd")
        assert other is not base
        assert variant._traces is rn._traces  # trace work genuinely shared
        assert len(rn._sims) == 2  # both results in the shared memo

    def test_variant_job_runs_under_its_config(self):
        rn = Runner("tiny")
        ex = Executor(rn, jobs=1)
        cfg = SMConfig(cache_assoc=2)
        ex.prime([Job("baseline", "vectoradd", config=cfg)])
        key = rn.variant(cfg).sim_key(
            "vectoradd", rn.variant(cfg).baseline("vectoradd").partition
        )
        assert key in rn._sims
