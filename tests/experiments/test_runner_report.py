"""Unit tests for the experiment runner cache and table formatting."""

import pytest

from repro.core import partitioned_baseline
from repro.experiments.report import format_table, geomean
from repro.experiments.runner import Runner


class TestRunnerCaching:
    def test_traces_cached_per_params(self):
        rn = Runner("tiny")
        a = rn.trace("needle")
        b = rn.trace("needle")
        assert a is b
        c = rn.trace("needle", blocking_factor=16)
        assert c is not a

    def test_compiled_cached_per_register_budget(self):
        rn = Runner("tiny")
        assert rn.compiled("pcr") is rn.compiled("pcr")
        assert rn.compiled("pcr", regs=18) is not rn.compiled("pcr")

    def test_simulations_cached_per_partition(self):
        rn = Runner("tiny")
        a = rn.baseline("vectoradd")
        b = rn.simulate("vectoradd", partitioned_baseline())
        assert a is b

    def test_no_spill_regs_matches_table1(self):
        rn = Runner("tiny")
        assert rn.no_spill_regs("dgemm") == 57
        assert rn.no_spill_regs("bfs") == 9

    def test_unified_returns_allocation(self):
        rn = Runner("tiny")
        result, alloc = rn.unified("bfs", total_kb=256)
        assert alloc.partition.total_bytes == 256 * 1024
        assert result.partition is alloc.partition

    def test_priced_uses_baseline_runtime(self):
        rn = Runner("tiny")
        base = rn.baseline("vectoradd")
        uni, _ = rn.unified("vectoradd")
        run = rn.priced(uni, baseline=base)
        assert run.energy.core_dynamic_j == pytest.approx(
            1.9 * base.cycles * 1e-9
        )


class TestReport:
    def test_alignment_and_floats(self):
        out = format_table(["name", "x"], [["a", 1.234], ["bb", 10.0]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "1.23" in out and "10.00" in out
        # Right-aligned numeric column.
        assert lines[-1].endswith("10.00")

    def test_short_rows_padded(self):
        out = format_table(["a", "b", "c"], [["x"]])
        assert out  # must not raise

    def test_empty_table(self):
        out = format_table(["a", "b"], [])
        assert "a" in out and "b" in out

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([]) == 0.0
        assert geomean([2.0, 0.0]) == pytest.approx(2.0)  # non-positive dropped
