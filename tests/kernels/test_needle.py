"""Needle-specific tests: blocking factors, footprints, wavefront shape."""

import pytest

from repro.isa import OpClass
from repro.kernels.needle import build, smem_bytes_for


class TestSmemFootprint:
    def test_bf32_matches_table1_within_padding(self):
        # Paper: 264.1 B/thread at bf=32; our padded pitch gives ~268.
        per_thread = smem_bytes_for(32) / 32
        assert per_thread == pytest.approx(264.1, rel=0.02)

    def test_quadratic_growth(self):
        # Doubling the blocking factor roughly quadruples the footprint
        # (Section 3.2: "increase the shared memory requirements
        # quadratically").
        assert smem_bytes_for(64) / smem_bytes_for(32) == pytest.approx(4, rel=0.1)
        assert smem_bytes_for(32) / smem_bytes_for(16) == pytest.approx(4, rel=0.1)


class TestBlockingFactors:
    @pytest.mark.parametrize("bf", [16, 32, 64])
    def test_buildable(self, bf):
        trace = build("tiny", blocking_factor=bf)
        assert trace.launch.smem_bytes_per_cta == smem_bytes_for(bf)
        # One CTA per matrix sub-block.
        assert trace.launch.num_ctas == (64 // bf) ** 2

    def test_bf64_uses_two_warps(self):
        trace = build("tiny", blocking_factor=64)
        assert trace.launch.warps_per_cta == 2

    def test_bf16_uses_half_warps(self):
        trace = build("tiny", blocking_factor=16)
        assert trace.launch.threads_per_cta == 32
        actives = {op.active for cta in trace.ctas for w in cta.warps for op in w}
        assert max(actives) == 16

    def test_invalid_bf_rejected(self):
        with pytest.raises(ValueError, match="blocking_factor"):
            build("tiny", blocking_factor=48)


class TestWavefrontStructure:
    def test_barrier_per_wavefront_step(self):
        bf = 32
        trace = build("tiny", blocking_factor=bf)
        warp = trace.ctas[0].warps[0]
        barriers = sum(1 for op in warp if op.op is OpClass.BARRIER)
        # One staging barrier plus one per anti-diagonal step.
        assert barriers == 1 + (2 * bf - 1)

    def test_wavefront_width_varies(self):
        trace = build("tiny", blocking_factor=32)
        warp = trace.ctas[0].warps[0]
        shared_loads = [op for op in warp if op.op is OpClass.LOAD_SHARED]
        widths = {op.active for op in shared_loads}
        assert 1 in widths  # the first/last diagonal is one cell wide
        assert 32 in widths  # the middle diagonal covers the block

    def test_diagonal_reads_are_bank_conflict_free(self):
        # The padded pitch must keep anti-diagonal reads spread across
        # banks (the Rodinia padding trick).
        from repro.core import partitioned_baseline
        from repro.memory import PartitionedBanks
        from repro.compiler import compile_kernel
        from repro.isa.opcodes import MemSpace

        ck = compile_kernel(build("tiny", blocking_factor=32))
        banks = PartitionedBanks(partitioned_baseline())
        worst = 0
        for w in ck.ctas[0].warps:
            for op in w.ops:
                if op.op.space is MemSpace.SHARED:
                    worst = max(worst, banks.access(op).penalty)
        assert worst <= 2
