"""Unit tests for the shared warp-level code patterns."""

from repro.isa import OpClass, WarpBuilder
from repro.kernels.base import broadcast, coalesced, region
from repro.kernels.patterns import (
    alu_chain,
    compute_block,
    smem_tree_reduce,
    stream_mac,
    tile_to_smem,
)


class TestAddressHelpers:
    def test_coalesced_is_unit_stride(self):
        addrs = coalesced(1 << 24, 10)
        assert addrs == [(1 << 24) + 4 * (10 + t) for t in range(32)]

    def test_broadcast_is_one_address(self):
        assert len(set(broadcast(0, 7))) == 1

    def test_regions_disjoint(self):
        assert region(1) - region(0) == 1 << 24
        for i in range(5):
            assert region(i) < region(i + 1)


class TestStreamMac:
    def test_ops_per_iteration(self):
        b = WarpBuilder()
        stream_mac(b, [region(0), region(1)], 0, iters=5)
        loads = sum(1 for op in b.ops if op.op is OpClass.LOAD_GLOBAL)
        assert loads == 10  # two arrays x five iterations

    def test_accumulator_threads_through(self):
        b = WarpBuilder()
        acc = stream_mac(b, [region(0)], 0, iters=3)
        macs = [op for op in b.ops if op.op is OpClass.ALU and acc in op.srcs]
        assert len(macs) >= 3

    def test_extra_alu(self):
        b = WarpBuilder()
        stream_mac(b, [region(0)], 0, iters=2, extra_alu=3)
        alus = sum(1 for op in b.ops if op.op is OpClass.ALU)
        assert alus >= 2 * (1 + 3)


class TestTileToSmem:
    def test_pairs_rows(self):
        b = WarpBuilder()
        tile_to_smem(b, region(0), 0, 0, rows=4)
        kinds = [op.op for op in b.ops]
        assert kinds.count(OpClass.LOAD_GLOBAL) == 4
        assert kinds.count(OpClass.STORE_SHARED) == 4

    def test_shared_addresses_contiguous(self):
        b = WarpBuilder()
        tile_to_smem(b, region(0), 0, 256, rows=2)
        stores = [op for op in b.ops if op.op is OpClass.STORE_SHARED]
        assert stores[0].addrs[0] == 256
        assert stores[1].addrs[0] == 256 + 128


class TestSmemTreeReduce:
    def test_barrier_count_independent_of_warp(self):
        counts = set()
        for warp in range(4):
            b = WarpBuilder()
            v = b.iconst()
            smem_tree_reduce(b, 0, warp, 4, v)
            counts.add(sum(1 for op in b.ops if op.op is OpClass.BARRIER))
        assert len(counts) == 1  # CTA barrier safety

    def test_log2_rounds(self):
        b = WarpBuilder()
        v = b.iconst()
        smem_tree_reduce(b, 0, 0, 8, v)  # 256 threads -> 8 rounds
        assert sum(1 for op in b.ops if op.op is OpClass.BARRIER) == 8

    def test_upper_warps_predicate_off(self):
        b = WarpBuilder()
        v = b.iconst()
        smem_tree_reduce(b, 0, 3, 4, v)  # warp 3 of 4
        loads = [op for op in b.ops if op.op is OpClass.LOAD_SHARED]
        # Warp 3 participates only while the stride covers its lanes.
        assert len(loads) < 2 * 7


class TestComputeBlock:
    def test_op_budget(self):
        b = WarpBuilder()
        x = b.iconst()
        compute_block(b, [x], alu_ops=6, sfu_ops=2)
        assert sum(1 for op in b.ops if op.op is OpClass.SFU) == 2
        assert sum(1 for op in b.ops if op.op is OpClass.ALU) >= 4

    def test_alu_chain_is_dependent(self):
        b = WarpBuilder()
        v = b.iconst()
        out = alu_chain(b, v, 5)
        chain = [op for op in b.ops if op.op is OpClass.ALU and op.srcs]
        for prev, nxt in zip(chain, chain[1:]):
            assert prev.dst in nxt.srcs
        assert out == chain[-1].dst
