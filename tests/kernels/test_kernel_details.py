"""Kernel-specific structural assertions beyond the generic suite checks.

Each test pins a distinctive property of one benchmark's trace that its
paper behaviour depends on: instruction mix, staging structure, access
granularity, or data-reuse pattern.
"""

from collections import Counter

import pytest

from repro.isa import OpClass
from repro.kernels import get_benchmark


def mix(trace):
    return Counter(op.op for op in trace.iter_ops())


@pytest.fixture(scope="module")
def t():
    cache = {}

    def build(name):
        if name not in cache:
            cache[name] = get_benchmark(name).build("tiny")
        return cache[name]

    return build


class TestComputeKernels:
    def test_nbody_is_compute_dominated(self, t):
        m = mix(t("nbody"))
        compute = m[OpClass.ALU] + m[OpClass.SFU]
        memory = m[OpClass.LOAD_GLOBAL] + m[OpClass.STORE_GLOBAL]
        assert compute > 3 * memory

    def test_nbody_broadcasts_partners(self, t):
        # Inner-loop partner loads are warp-wide broadcasts: one address.
        loads = [
            op for op in t("nbody").iter_ops() if op.op is OpClass.LOAD_GLOBAL
        ]
        broadcast = [op for op in loads if len(set(op.addrs)) == 1]
        assert len(broadcast) > len(loads) / 2

    def test_bicubic_issues_16_texel_fetches_per_warp(self, t):
        trace = t("bicubictexture")
        warp = trace.ctas[0].warps[0]
        assert sum(1 for op in warp if op.op is OpClass.TEX) == 16
        assert not any(op.op is OpClass.LOAD_GLOBAL for op in warp)

    def test_sobolqrng_is_store_heavy(self, t):
        m = mix(t("sobolqrng"))
        assert m[OpClass.STORE_GLOBAL] > m[OpClass.LOAD_GLOBAL]


class TestScratchpadKernels:
    def test_sto_is_shared_memory_dominated(self, t):
        m = mix(t("sto"))
        shared = m[OpClass.LOAD_SHARED] + m[OpClass.STORE_SHARED]
        global_ = m[OpClass.LOAD_GLOBAL] + m[OpClass.STORE_GLOBAL]
        assert shared > global_

    def test_aes_rounds_gather_from_tboxes(self, t):
        warp = t("aes").ctas[0].warps[1]  # warp 1: no staging code
        gathers = [op for op in warp if op.op is OpClass.LOAD_SHARED]
        assert len(gathers) == 4 * 10  # 4 words x 10 rounds

    def test_pcr_reads_strided_neighbours(self, t):
        # Reduction steps read +/- 2^s neighbours: shared loads at
        # growing strides must appear.
        warp = t("pcr").ctas[0].warps[0]
        strides = set()
        for op in warp:
            if op.op is OpClass.LOAD_SHARED and len(op.addrs) > 1:
                strides.add(abs(op.addrs[1] - op.addrs[0]))
        assert 4 in strides  # unit stride staging
        assert any(s > 4 for s in strides)  # strided neighbour reads

    def test_matrixmul_barriers_bracket_each_ktile(self, t):
        trace = t("matrixmul")
        n = 32  # tiny matrix dim
        warp = trace.ctas[0].warps[0]
        barriers = sum(1 for op in warp if op.op is OpClass.BARRIER)
        assert barriers == 2 * (n // 16)  # two per k-tile


class TestMemoryBehaviourKernels:
    def test_nn_rereads_tiny_weight_region(self, t):
        addrs = set()
        loads = 0
        for op in t("nn").iter_ops():
            if op.op is OpClass.LOAD_GLOBAL:
                loads += 1
                addrs.update(op.addrs)
        # Many loads over a small distinct footprint: the 20x uncached
        # blow-up mechanism of Table 1.
        distinct_lines = len({a // 128 for a in addrs})
        assert loads > 4 * distinct_lines

    def test_recursivegaussian_carries_iir_state(self, t):
        # The 4-tap recursive filter makes each row's output depend on
        # the previous rows: ALU srcs reach back across iterations.
        warp = t("recursivegaussian").ctas[0].warps[0]
        alus = [op for op in warp if op.op is OpClass.ALU and len(op.srcs) >= 3]
        assert len(alus) >= 16  # two taps per row over 16 rows

    def test_dgemm_uses_double_width_elements(self, t):
        # Double precision: global accesses advance 8 bytes per thread.
        for op in t("dgemm").iter_ops():
            if op.op is OpClass.LOAD_GLOBAL:
                assert op.addrs[1] - op.addrs[0] == 8
                break
        else:
            pytest.fail("dgemm has no global loads")

    def test_dgemm_holds_36_accumulators(self, t):
        from repro.compiler.liveness import max_live_registers

        warp = t("dgemm").ctas[0].warps[0]
        # The register target (57) exceeds the 6x6 accumulator block by
        # the operand/address overhead; liveness must reflect the block.
        assert max_live_registers(warp) == 57

    def test_srad_has_two_phases(self, t):
        trace = t("srad")
        assert trace.launch.num_ctas % 2 == 0
        # Phase-1 CTAs write the coefficient array, phase-2 the output.
        half = trace.launch.num_ctas // 2
        first = {op.addrs[0] >> 24 for op in trace.ctas[0].warps[0]
                 if op.op is OpClass.STORE_GLOBAL}
        second = {op.addrs[0] >> 24 for op in trace.ctas[half].warps[0]
                  if op.op is OpClass.STORE_GLOBAL}
        assert first != second

    def test_lu_shares_pivot_tiles_across_ctas(self, t):
        trace = t("lu")
        if trace.launch.num_ctas < 2:
            pytest.skip("tiny grid too small")

        def loads(c):
            return {
                a
                for op in trace.ctas[c].warps[0]
                if op.op is OpClass.LOAD_GLOBAL
                for a in op.addrs
            }

        # Two CTAs of the same outer step read overlapping pivot data.
        assert loads(0) & loads(1)

    def test_vectoradd_touches_each_element_once(self, t):
        seen = Counter()
        for op in t("vectoradd").iter_ops():
            if op.op is OpClass.LOAD_GLOBAL:
                seen.update(op.addrs)
        assert seen and max(seen.values()) == 1
