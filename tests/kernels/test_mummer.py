"""Tests for the suffix-trie substrate behind gpu-mummer."""

import numpy as np

from repro.kernels.mummer import _Trie


def _ref(n=256, seed=7):
    return np.random.default_rng(seed).integers(0, 4, size=n, dtype=np.int8)


class TestTrieConstruction:
    def test_root_exists(self):
        trie = _Trie(_ref(), max_nodes=100)
        assert len(trie.children) >= 1
        assert len(trie.children[0]) == 4

    def test_node_cap_respected(self):
        trie = _Trie(_ref(1024), max_nodes=50)
        assert len(trie.children) <= 50

    def test_children_are_valid_indices(self):
        trie = _Trie(_ref(), max_nodes=500)
        n = len(trie.children)
        for node in trie.children:
            for c in node:
                assert c == -1 or 0 <= c < n

    def test_reference_substrings_walk_without_root_resets(self):
        # A trie built from the reference must contain its substrings
        # (up to the insertion depth), so an exact substring's walk never
        # resets -- provided the node budget was not exhausted.
        ref = _ref(64)
        trie = _Trie(ref, max_nodes=100000)
        path = trie.walk(ref[10:20])
        assert len(path) == 11
        assert 0 not in path[1:]  # never bounced back to the root


class TestWalk:
    def test_walk_length(self):
        trie = _Trie(_ref(), max_nodes=1000)
        q = np.array([0, 1, 2, 3, 0, 1], dtype=np.int8)
        assert len(trie.walk(q)) == 7

    def test_mismatch_restarts_at_root(self):
        ref = np.zeros(32, dtype=np.int8)  # all 'A': only A-paths exist
        trie = _Trie(ref, max_nodes=1000)
        q = np.array([0, 0, 3, 0], dtype=np.int8)  # 'AACA'
        path = trie.walk(q)
        assert path[3] == 0  # the 'C' has no edge: reset

    def test_walk_deterministic(self):
        trie = _Trie(_ref(), max_nodes=1000)
        q = _ref(16, seed=3)
        assert trie.walk(q) == trie.walk(q)
