"""Per-benchmark trace validity tests (parametrised over the suite).

These check, for every benchmark at the tiny scale, the properties the
experiments rely on: exact Table 1 register targets, declared
shared-memory footprints, well-formed addresses, and barrier-safe CTAs
(the CTATrace constructor enforces matching barrier counts).
"""

import pytest

from repro.compiler import compile_kernel, max_live_registers
from repro.compiler.pipeline import LOCAL_BASE
from repro.isa.opcodes import MemSpace
from repro.kernels import all_benchmarks, get_benchmark

ALL_NAMES = [bm.name for bm in all_benchmarks()]


@pytest.fixture(scope="module")
def traces():
    return {bm.name: bm.build("tiny") for bm in all_benchmarks()}


@pytest.mark.parametrize("name", ALL_NAMES)
class TestEveryBenchmark:
    def test_register_target_met_exactly(self, name, traces):
        bm = get_benchmark(name)
        trace = traces[name]
        peak = max(max_live_registers(w) for cta in trace.ctas for w in cta.warps)
        assert peak == bm.paper_regs

    def test_shared_memory_per_thread_close_to_paper(self, name, traces):
        bm = get_benchmark(name)
        measured = traces[name].launch.smem_bytes_per_thread
        if bm.paper_smem_bytes_per_thread == 0:
            assert measured == 0
        else:
            assert measured == pytest.approx(bm.paper_smem_bytes_per_thread, rel=0.02)

    def test_global_addresses_below_spill_region(self, name, traces):
        for op in traces[name].iter_ops():
            if op.op.space in (MemSpace.GLOBAL,):
                assert all(0 <= a < LOCAL_BASE for a in op.addrs)

    def test_shared_addresses_within_cta_allocation(self, name, traces):
        trace = traces[name]
        limit = trace.launch.smem_bytes_per_cta
        for op in trace.iter_ops():
            if op.op.space is MemSpace.SHARED:
                assert all(0 <= a < limit for a in op.addrs), (
                    f"{name}: shared address outside the {limit}-byte CTA allocation"
                )

    def test_texture_flag_consistent(self, name, traces):
        from repro.isa import OpClass

        uses_tex = any(op.op is OpClass.TEX for op in traces[name].iter_ops())
        assert uses_tex == traces[name].uses_texture

    def test_compiles_and_simulates_on_baseline(self, name, traces):
        from repro.core import partitioned_baseline
        from repro.sm import simulate

        ck = compile_kernel(traces[name])
        r = simulate(ck, partitioned_baseline())
        assert r.cycles > 0
        assert r.instructions == ck.total_ops

    def test_deterministic_rebuild(self, name, traces):
        rebuilt = get_benchmark(name).build("tiny")
        first = traces[name]
        assert rebuilt.total_ops == first.total_ops
        a = [op for op in rebuilt.iter_ops()][:50]
        c = [op for op in first.iter_ops()][:50]
        assert a == c


class TestScaleProgression:
    @pytest.mark.parametrize("name", ["vectoradd", "needle", "pcr"])
    def test_small_is_larger_than_tiny(self, name):
        bm = get_benchmark(name)
        assert bm.build("small").total_ops > bm.build("tiny").total_ops

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError, match="unknown scale"):
            get_benchmark("vectoradd").build("huge")
