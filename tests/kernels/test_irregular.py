"""Tests for the irregular extension suite and its study."""

import pytest

from repro.compiler import compile_kernel
from repro.experiments import irregular
from repro.isa import OpClass
from repro.kernels.irregular import all_irregular, get_irregular


class TestRegistry:
    def test_four_workloads(self):
        assert {w.name for w in all_irregular()} == {
            "collatz",
            "binsearch",
            "spmv",
            "hashprobe",
        }

    def test_unknown_rejected(self):
        with pytest.raises(KeyError, match="unknown irregular"):
            get_irregular("nope")


@pytest.mark.parametrize("name", ["collatz", "binsearch", "spmv", "hashprobe"])
class TestTraces:
    def test_builds_and_diverges(self, name):
        trace = get_irregular(name).build("tiny")
        assert trace.total_ops > 0
        actives = {op.active for op in trace.iter_ops()}
        assert min(actives) < 32, "irregular workload never diverged"

    def test_no_shared_memory_small_registers(self, name):
        trace = get_irregular(name).build("tiny")
        assert trace.launch.smem_bytes_per_cta == 0
        ck = compile_kernel(trace)
        assert ck.regs_per_thread <= 20

    def test_deterministic(self, name):
        a = get_irregular(name).build("tiny")
        b = get_irregular(name).build("tiny")
        assert a.total_ops == b.total_ops
        assert list(a.iter_ops())[:40] == list(b.iter_ops())[:40]


class TestDataDependence:
    def test_binsearch_reads_the_table(self):
        trace = get_irregular("binsearch").build("tiny")
        from repro.kernels.irregular.workloads import _TABLE

        table_reads = sum(
            1
            for op in trace.iter_ops()
            if op.op is OpClass.LOAD_GLOBAL
            and all(_TABLE <= a < _TABLE + (1 << 24) for a in op.addrs)
        )
        assert table_reads > 0

    def test_hashprobe_chain_lengths_vary(self):
        # Different warps should execute different numbers of probe ops.
        trace = get_irregular("hashprobe").build("tiny")
        per_warp = [len(w) for cta in trace.ctas for w in cta.warps]
        assert len(set(per_warp)) > 1


class TestStudy:
    @pytest.fixture(scope="class")
    def result(self):
        # The small scale sizes the working sets to straddle the
        # 64 KB -> 344 KB cache window; at tiny everything fits 64 KB
        # and (correctly) nothing benefits.
        return irregular.run("small")

    def test_cache_hungry_workloads_benefit(self, result):
        # The memory-bound irregular kernels must gain; collatz is
        # compute-bound and must not be hurt.
        assert result.row("binsearch").speedup > 1.1
        assert result.row("hashprobe").speedup >= 1.0
        assert result.row("collatz").speedup == pytest.approx(1.0, abs=0.02)

    def test_allocator_converts_pool_to_cache(self, result):
        for row in result.rows:
            assert row.unified_cache_kb > 300

    def test_dram_never_increases(self, result):
        for row in result.rows:
            assert row.dram_ratio <= 1.01

    def test_format(self, result):
        text = result.format()
        assert "irregular workloads" in text
        assert "spmv" in text
