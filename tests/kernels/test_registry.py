"""Tests for the benchmark registry against the paper's Table 1 facts."""

import pytest

from repro.kernels import (
    BENEFIT_SET,
    NO_BENEFIT_SET,
    Category,
    all_benchmarks,
    benchmarks_in,
    get_benchmark,
)


class TestSuiteComposition:
    def test_twenty_six_benchmarks(self):
        assert len(all_benchmarks()) == 26

    def test_benefit_set_is_figure9(self):
        # The eight Figure 9 benchmarks.
        assert set(BENEFIT_SET) == {
            "bfs",
            "dgemm",
            "lu",
            "gpu-mummer",
            "pcr",
            "ray",
            "srad",
            "needle",
        }

    def test_no_benefit_set_is_figure7(self):
        assert len(NO_BENEFIT_SET) == 18
        assert set(NO_BENEFIT_SET) & set(BENEFIT_SET) == set()

    def test_unique_names(self):
        names = [bm.name for bm in all_benchmarks()]
        assert len(names) == len(set(names))

    def test_categories_cover_table1(self):
        assert len(benchmarks_in(Category.SHARED_LIMITED)) == 3
        assert len(benchmarks_in(Category.CACHE_LIMITED)) == 7
        assert len(benchmarks_in(Category.REGISTER_LIMITED)) == 5
        assert len(benchmarks_in(Category.BALANCED)) == 11

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            get_benchmark("nosuch")

    def test_lookup_by_name(self):
        assert get_benchmark("needle").name == "needle"
        assert get_benchmark("gpu-mummer").category is Category.CACHE_LIMITED


class TestPaperMetadata:
    def test_table6_data_only_on_benefit_set(self):
        for bm in all_benchmarks():
            assert bm.benefits == (bm.name in BENEFIT_SET)
            if bm.benefits:
                assert len(bm.paper_table6_perf) == 3
                assert len(bm.paper_table6_energy) == 3

    def test_needle_is_flagship(self):
        needle = get_benchmark("needle")
        assert needle.paper_speedup_384 == pytest.approx(1.71)
        assert needle.paper_smem_bytes_per_thread == pytest.approx(264.1)

    def test_dram_ratios_sane(self):
        for bm in all_benchmarks():
            uncached, at64 = bm.paper_dram
            assert uncached >= 0.8  # needle's 0.85 is the smallest
            assert at64 >= 0.99
