"""Tests for the BFS graph substrate."""

import numpy as np
import pytest

from repro.kernels.bfs import bfs_levels, build, generate_graph


class TestGraphGeneration:
    def test_deterministic(self):
        a = generate_graph(512, 4)
        b = generate_graph(512, 4)
        assert np.array_equal(a[0], b[0])
        assert np.array_equal(a[1], b[1])

    def test_different_seed_differs(self):
        a = generate_graph(512, 4, seed=1)
        b = generate_graph(512, 4, seed=2)
        assert not np.array_equal(a[1], b[1])

    def test_csr_well_formed(self):
        offsets, targets = generate_graph(256, 4)
        assert len(offsets) == 257
        assert offsets[0] == 0
        assert np.all(np.diff(offsets) >= 1)  # min degree 1
        assert offsets[-1] == len(targets)
        assert np.all((targets >= 0) & (targets < 256))


class TestHostBFS:
    def test_levels_partition_reachable_nodes(self):
        offsets, targets = generate_graph(512, 4)
        levels, level_of = bfs_levels(offsets, targets)
        seen = set()
        for i, frontier in enumerate(levels):
            for n in frontier:
                assert level_of[n] == i
                assert n not in seen
                seen.add(n)
        # Unreachable nodes stay at -1.
        assert all(level_of[n] >= 0 for n in seen)

    def test_source_is_level_zero(self):
        offsets, targets = generate_graph(128, 4)
        levels, level_of = bfs_levels(offsets, targets)
        assert levels[0] == [0]
        assert level_of[0] == 0

    def test_edges_respect_level_invariant(self):
        # A BFS tree edge never skips a level downward.
        offsets, targets = generate_graph(256, 4)
        _, level_of = bfs_levels(offsets, targets)
        for u in range(256):
            if level_of[u] < 0:
                continue
            for v in targets[offsets[u] : offsets[u + 1]]:
                if level_of[v] >= 0:
                    assert level_of[v] <= level_of[u] + 1


class TestTrace:
    def test_every_level_rescans_all_nodes(self):
        trace = build("tiny")
        offsets, targets = generate_graph(1024, 4)
        levels, _ = bfs_levels(offsets, targets)
        assert trace.launch.num_ctas == (1024 // 256) * len(levels)

    def test_uses_no_shared_memory(self):
        assert build("tiny").launch.smem_bytes_per_cta == 0
