"""Tests for the chip-level scale-up model."""

import pytest

from repro.core import partitioned_baseline
from repro.energy.chip import CHIP_POWER_W, NUM_SMS, ChipModel
from repro.sm import simulate
from tests.util import compiled, multi_warp_kernel, warp_alu_chain, warp_streaming_loads


@pytest.fixture(scope="module")
def busy_result():
    # A mixed workload keeping all 32 warps busy.
    warps = [warp_streaming_loads(8, base=i << 20) for i in range(4)] + [
        warp_alu_chain(100) for _ in range(4)
    ]
    k = compiled(multi_warp_kernel(warps, num_ctas=4))
    return simulate(k, partitioned_baseline())


class TestChipSummary:
    def test_components_sum(self, busy_result):
        c = ChipModel().evaluate(busy_result)
        assert c.total_j == pytest.approx(c.sm_energy_j + c.memory_system_j)
        assert c.runtime_s == pytest.approx(busy_result.cycles * 1e-9)

    def test_average_power_in_budget_ballpark(self, busy_result):
        # The paper's chip draws 130 W; our model must land in the same
        # regime (the SM share alone accounts for ~91 W when busy).
        c = ChipModel().evaluate(busy_result)
        assert 60 < c.avg_power_w < 200

    def test_sm_share_dominates(self, busy_result):
        c = ChipModel().evaluate(busy_result)
        assert c.sm_energy_j > c.memory_system_j

    def test_scaling_is_32x_sm(self, busy_result):
        from repro.energy import EnergyModel

        sm = EnergyModel().evaluate(busy_result)
        c = ChipModel().evaluate(busy_result)
        assert c.sm_energy_j == pytest.approx(
            NUM_SMS * (sm.core_dynamic_j + sm.bank_j + sm.leakage_j)
        )

    def test_energy_per_instruction_positive(self, busy_result):
        c = ChipModel().evaluate(busy_result)
        assert c.energy_per_instruction_pj > 0

    def test_summary_readable(self, busy_result):
        text = ChipModel().evaluate(busy_result).summary()
        assert "W average" in text

    def test_constants_match_paper(self):
        assert NUM_SMS == 32
        assert CHIP_POWER_W == 130.0
