"""Tests for the chip-level energy model (analytic and measured)."""

import pytest

from repro.chip import ChipConfig, simulate_chip
from repro.core import partitioned_baseline
from repro.energy import EnergyModel
from repro.energy.chip import ChipModel
from repro.energy.params import EnergyParams
from tests.util import compiled, multi_warp_kernel, warp_alu_chain, warp_streaming_loads


@pytest.fixture(scope="module")
def busy_kernel():
    # A mixed workload keeping all 32 warps busy.
    warps = [warp_streaming_loads(8, base=i << 20) for i in range(4)] + [
        warp_alu_chain(100) for _ in range(4)
    ]
    return compiled(multi_warp_kernel(warps, num_ctas=4))


@pytest.fixture(scope="module")
def busy_result(busy_kernel):
    from repro.sm import simulate

    return simulate(busy_kernel, partitioned_baseline())


class TestChipSummary:
    def test_components_sum(self, busy_result):
        c = ChipModel().evaluate(busy_result)
        assert c.total_j == pytest.approx(c.sm_energy_j + c.memory_system_j)
        assert c.runtime_s == pytest.approx(busy_result.cycles * 1e-9)

    def test_average_power_in_budget_ballpark(self, busy_result):
        # The paper's chip draws 130 W; our model must land in the same
        # regime (the SM share alone accounts for ~91 W when busy).
        c = ChipModel().evaluate(busy_result)
        assert 60 < c.avg_power_w < 200

    def test_sm_share_dominates(self, busy_result):
        c = ChipModel().evaluate(busy_result)
        assert c.sm_energy_j > c.memory_system_j

    def test_scaling_is_num_sms_x_sm(self, busy_result):
        sm = EnergyModel().evaluate(busy_result)
        per_sm = sm.core_dynamic_j + sm.bank_j + sm.leakage_j
        c32 = ChipModel().evaluate(busy_result)
        assert c32.sm_energy_j == pytest.approx(32 * per_sm)
        c4 = ChipModel(num_sms=4).evaluate(busy_result)
        assert c4.sm_energy_j == pytest.approx(4 * per_sm)

    def test_energy_per_instruction_positive(self, busy_result):
        c = ChipModel().evaluate(busy_result)
        assert c.energy_per_instruction_pj > 0

    def test_summary_readable(self, busy_result):
        text = ChipModel().evaluate(busy_result).summary()
        assert "W average" in text

    def test_paper_defaults(self):
        p = EnergyParams()
        assert p.chip_power_w == 130.0
        assert p.sm_energy_share == 0.70
        assert ChipModel().num_sms == 32

    def test_budget_scales_with_chip_power(self, busy_result):
        # Halving the chip budget halves the non-DRAM memory residual.
        half = ChipModel(EnergyParams(chip_power_w=65.0))
        assert half.non_dram_memory_power_w() == pytest.approx(
            ChipModel().non_dram_memory_power_w() / 2
        )

    def test_bad_num_sms(self):
        with pytest.raises(ValueError):
            ChipModel(num_sms=0)


class TestMeasuredChip:
    def test_single_sm_measured_matches_analytic(self, busy_kernel, busy_result):
        # A 1-SM chip with the private full-slice channel is the
        # single-SM methodology, so the measured pricing must equal the
        # analytic N=1 scale-up of the identical SimResult.
        cr = simulate_chip(busy_kernel, partitioned_baseline(), ChipConfig.single_sm())
        model = ChipModel(num_sms=1)
        measured = model.evaluate_chip(cr)
        analytic = model.evaluate(busy_result)
        assert measured.total_j == pytest.approx(analytic.total_j)
        assert measured.sm_energy_j == pytest.approx(analytic.sm_energy_j)
        assert measured.memory_system_j == pytest.approx(analytic.memory_system_j)

    def test_measured_sums_per_sm_counters(self, busy_kernel):
        cr = simulate_chip(
            busy_kernel,
            partitioned_baseline(),
            ChipConfig(num_sms=2, dram_bytes_per_cycle=16.0, dram_channels=2),
        )
        model = ChipModel()
        em = model.energy_model
        c = model.evaluate_chip(cr)
        bank = sum(em.bank_energy_j(r) for r in cr.per_sm)
        dram = sum(em.dram_j(r) for r in cr.per_sm)
        core = 2 * em.core_dynamic_j(cr.cycles)
        leak = 2 * em.leakage_w(cr.partition) * c.runtime_s
        assert c.sm_energy_j == pytest.approx(core + bank + leak)
        assert c.memory_system_j == pytest.approx(
            dram + model.non_dram_memory_power_w() * c.runtime_s
        )
        assert c.total_j == pytest.approx(c.sm_energy_j + c.memory_system_j)

    def test_idle_sms_still_leak(self, busy_kernel):
        # 4-SM run of a 4-CTA grid: some SMs finish early (or get
        # nothing), yet leakage is priced at the chip makespan for all.
        cr = simulate_chip(
            busy_kernel,
            partitioned_baseline(),
            ChipConfig(num_sms=4, dram_bytes_per_cycle=32.0, dram_channels=4),
        )
        model = ChipModel()
        c = model.evaluate_chip(cr)
        em = model.energy_model
        assert c.runtime_s == pytest.approx(cr.cycles * 1e-9)
        expected_leak = 4 * em.leakage_w(cr.partition) * c.runtime_s
        bank = sum(em.bank_energy_j(r) for r in cr.per_sm)
        core = 4 * em.core_dynamic_j(cr.cycles)
        assert c.sm_energy_j == pytest.approx(core + bank + expected_leak)
