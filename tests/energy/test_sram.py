"""Tests for the SRAM energy fit against the paper's Table 4."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.energy import TABLE4_POINTS, bank_energy
from repro.energy.sram import READ_FIT, WRITE_FIT


class TestTable4Calibration:
    @pytest.mark.parametrize("bank_kb,read_pj,write_pj", TABLE4_POINTS)
    def test_fit_reproduces_published_points(self, bank_kb, read_pj, write_pj):
        assert bank_energy(bank_kb) == pytest.approx(read_pj, rel=0.05)
        assert bank_energy(bank_kb, write=True) == pytest.approx(write_pj, rel=0.05)

    def test_unified_bank_costs_more_than_mrf_bank(self):
        # The paper's overhead discussion: 12 KB unified banks cost more
        # per access than 8 KB MRF banks and far more than 2 KB banks.
        assert bank_energy(12) > bank_energy(8) > bank_energy(2)

    def test_writes_cost_more_than_reads(self):
        for kb in (1, 2, 4, 8, 12, 16):
            assert bank_energy(kb, write=True) > bank_energy(kb)

    def test_zero_capacity_costs_nothing(self):
        assert bank_energy(0) == 0.0
        assert bank_energy(0, write=True) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bank_energy(-1)


class TestScaling:
    def test_sublinear_growth(self):
        # Power law with b < 1: doubling capacity less than doubles energy.
        assert 0 < READ_FIT.b < 1
        assert 0 < WRITE_FIT.b < 1

    @given(st.floats(min_value=0.5, max_value=64))
    @settings(max_examples=50, deadline=None)
    def test_monotone(self, kb):
        assert bank_energy(2 * kb) > bank_energy(kb)

    def test_fermi_pool_bank_interpolates(self):
        # 4 KB banks (Fermi-like 128 KB pool) sit between 2 and 8 KB points.
        assert 3.9 < bank_energy(4) < 9.8
