"""Tests for chip-level energy accounting."""

import pytest

from repro.core import DesignStyle, MemoryPartition, partitioned_baseline
from repro.core.partition import KB
from repro.energy import EnergyModel, EnergyParams
from repro.sm import simulate
from tests.util import compiled, single_warp_kernel, warp_streaming_loads


def unified_equal_capacity():
    return MemoryPartition(
        DesignStyle.UNIFIED,
        rf_bytes=256 * KB,
        smem_bytes=64 * KB,
        cache_bytes=64 * KB,
    )


@pytest.fixture(scope="module")
def run_pair():
    k = compiled(single_warp_kernel(warp_streaming_loads(20)))
    base = simulate(k, partitioned_baseline())
    uni = simulate(k, unified_equal_capacity())
    return base, uni


class TestBreakdown:
    def test_components_positive_and_sum(self, run_pair):
        base, _ = run_pair
        e = EnergyModel().evaluate(base)
        assert e.core_dynamic_j > 0
        assert e.bank_j > 0
        assert e.leakage_j > 0
        assert e.dram_j > 0
        assert e.total_j == pytest.approx(
            e.core_dynamic_j + e.bank_j + e.leakage_j + e.dram_j
        )

    def test_dram_energy_follows_traffic(self, run_pair):
        base, _ = run_pair
        e = EnergyModel().evaluate(base)
        expected = base.energy_counts.dram_bits * 40e-12
        assert e.dram_j == pytest.approx(expected)

    def test_core_dynamic_uses_baseline_runtime(self, run_pair):
        base, uni = run_pair
        m = EnergyModel()
        priced = m.evaluate(uni, baseline_cycles=base.cycles)
        own = m.evaluate(uni)
        assert priced.core_dynamic_j == pytest.approx(
            1.9 * base.cycles * 1e-9
        )
        if uni.cycles != base.cycles:
            assert priced.core_dynamic_j != own.core_dynamic_j

    def test_leakage_scales_with_capacity_and_time(self, run_pair):
        base, _ = run_pair
        m = EnergyModel()
        e_big = m.leakage_j(base)
        small = simulate(
            compiled(single_warp_kernel(warp_streaming_loads(20))),
            MemoryPartition(
                DesignStyle.PARTITIONED,
                rf_bytes=64 * KB,
                smem_bytes=32 * KB,
                cache_bytes=32 * KB,
            ),
        )
        e_small = m.leakage_j(small)
        # Same workload, near-equal runtime, one-third the SRAM.
        assert e_small < e_big

    def test_summary_readable(self, run_pair):
        base, _ = run_pair
        text = EnergyModel().evaluate(base).summary()
        assert "mJ" in text and "DRAM" in text


class TestUnifiedOverheads:
    def test_unified_bank_accesses_cost_more(self, run_pair):
        base, uni = run_pair
        m = EnergyModel()
        # Same trace, same counts; unified banks are 12 KB vs 8/2 KB and
        # shared/cache accesses pay the 10% wire overhead.
        assert m.bank_energy_j(uni) > m.bank_energy_j(base)

    def test_overhead_is_small_fraction_of_total(self, run_pair):
        # Paper Section 6.1: bank energy increase is negligible chip-wide.
        base, uni = run_pair
        m = EnergyModel()
        eb = m.evaluate(base)
        eu = m.evaluate(uni, baseline_cycles=base.cycles)
        assert eu.total_j / eb.total_j < 1.10

    def test_wire_overhead_configurable(self, run_pair):
        _, uni = run_pair
        lo = EnergyModel(EnergyParams(unified_wire_overhead=0.0)).bank_energy_j(uni)
        hi = EnergyModel(EnergyParams(unified_wire_overhead=0.5)).bank_energy_j(uni)
        assert hi > lo
