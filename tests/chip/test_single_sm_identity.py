"""The refactor's contract: a 1-SM chip IS the single-SM simulator.

Every golden fixture (6 kernels x 3 designs, full SimResult
serialization) must be reproduced bit-for-bit by ``simulate_chip``
under ``ChipConfig.single_sm()`` -- one SM behind a private channel
carrying the paper's 8 B/cycle slice.  Any divergence means the chip
loop's arithmetic drifted from :func:`repro.sm.simulate`.
"""

import json
from pathlib import Path

import pytest

from repro.chip import ChipConfig, simulate_chip
from repro.core import fermi_like, partitioned_baseline
from repro.experiments.runner import Runner
from repro.sm.serialize import result_to_dict

GOLDEN_DIR = Path(__file__).parent.parent / "golden"
CASES = sorted(p.name for p in GOLDEN_DIR.glob("*__*.json"))


@pytest.fixture(scope="module")
def rn():
    return Runner("tiny")


def _case_partition(rn, kernel: str, design: str):
    if design == "baseline":
        return partitioned_baseline()
    if design == "fermi0":
        return fermi_like(0)
    assert design == "unified384"
    return rn.allocation(kernel, total_kb=384).partition


@pytest.mark.parametrize("case", CASES)
def test_one_sm_chip_reproduces_golden_fixture(case, rn):
    stored = json.loads((GOLDEN_DIR / case).read_text())
    kernel, design = case.removesuffix(".json").split("__")
    partition = _case_partition(rn, kernel, design)
    cr = simulate_chip(rn.compiled(kernel), partition, ChipConfig.single_sm())
    assert cr.num_sms == 1
    got = result_to_dict(cr.per_sm[0])
    assert got == stored, (
        f"{case}: 1-SM chip diverged from the single-SM simulator"
    )
    # Chip aggregates collapse to the single SM's numbers.
    assert cr.cycles == stored["cycles"]
    assert cr.instructions == stored["instructions"]
    assert cr.dram_bytes == stored["dram_bytes"]


def test_one_sm_shared_system_is_also_identical(rn):
    # Even without hard partitioning, one SM on a 1-channel DRAMSystem
    # carrying the slice bandwidth reserves the identical bus intervals.
    kernel = "matrixmul"
    partition = partitioned_baseline()
    cfg = rn.config
    shared = ChipConfig(
        num_sms=1,
        dram_bytes_per_cycle=cfg.dram_bytes_per_cycle,
        dram_channels=1,
        dram_partitioned=False,
        sm=cfg,
    )
    cr = simulate_chip(rn.compiled(kernel), partition, shared)
    baseline = rn.simulate(kernel, partition)
    assert result_to_dict(cr.per_sm[0]) == result_to_dict(baseline)
    assert cr.dram_channel_bytes == [baseline.dram_bytes]
