"""Runner integration: chip simulations memoised, journaled, and cached."""

import pytest

from repro.chip import ChipConfig, chip_result_to_dict
from repro.core import partitioned_baseline
from repro.experiments.artifacts import DiskCache
from repro.experiments.runner import Runner

TINY_CHIP = ChipConfig(num_sms=2, dram_bytes_per_cycle=16.0, dram_channels=2)


class TestMemoisation:
    def test_same_request_returns_memoised_object(self):
        rn = Runner("tiny")
        a = rn.simulate_chip("vectoradd", partitioned_baseline(), chip=TINY_CHIP)
        b = rn.simulate_chip("vectoradd", partitioned_baseline(), chip=TINY_CHIP)
        assert a is b

    def test_chip_shape_participates_in_the_key(self):
        rn = Runner("tiny")
        part = partitioned_baseline()
        two = rn.simulate_chip("vectoradd", part, chip=TINY_CHIP)
        one = rn.simulate_chip("vectoradd", part, chip=ChipConfig.single_sm())
        assert two is not one
        assert two.num_sms == 2 and one.num_sms == 1

    def test_default_chip_uses_runner_config(self):
        rn = Runner("tiny")
        cr = rn.simulate_chip("vectoradd", partitioned_baseline())
        assert cr.config.num_sms == 32
        assert cr.config.sm == rn.config

    def test_journal_records_chip_results(self):
        rn = Runner("tiny")
        rn.journal_reset()
        rn.simulate_chip("vectoradd", partitioned_baseline(), chip=TINY_CHIP)
        entries = rn.journal_reset()
        kinds = [kind for kind, _, _ in entries]
        assert "chip" in kinds

    def test_adopt_replays_chip_entries(self):
        worker = Runner("tiny")
        worker.journal_reset()
        cr = worker.simulate_chip("vectoradd", partitioned_baseline(), chip=TINY_CHIP)
        parent = Runner("tiny")
        parent.adopt(worker.journal_reset())
        again = parent.simulate_chip(
            "vectoradd", partitioned_baseline(), chip=TINY_CHIP
        )
        assert again is not None
        assert chip_result_to_dict(again) == chip_result_to_dict(cr)


class TestDiskCache:
    def test_chip_results_persist_across_runners(self, tmp_path):
        part = partitioned_baseline()
        first = Runner("tiny", cache=DiskCache(tmp_path))
        cr = first.simulate_chip("vectoradd", part, chip=TINY_CHIP)
        second = Runner("tiny", cache=DiskCache(tmp_path))
        loaded = second.simulate_chip("vectoradd", part, chip=TINY_CHIP)
        assert chip_result_to_dict(loaded) == chip_result_to_dict(cr)
        assert second.cache.stats.meta_hits >= 1

    def test_corrupt_entry_regenerates(self, tmp_path):
        part = partitioned_baseline()
        rn = Runner("tiny", cache=DiskCache(tmp_path))
        cr = rn.simulate_chip("vectoradd", part, chip=TINY_CHIP)
        key = rn.chip_sim_key("vectoradd", part, TINY_CHIP)
        path = rn.cache.meta_path(rn._chip_disk_key(key))
        path.write_text('{"chip_version": 999}')
        fresh = Runner("tiny", cache=DiskCache(tmp_path))
        again = fresh.simulate_chip("vectoradd", part, chip=TINY_CHIP)
        assert chip_result_to_dict(again) == chip_result_to_dict(cr)


class TestVariant:
    def test_variants_share_the_chip_memo(self):
        rn = Runner("tiny")
        v = rn.variant(rn.config)
        a = rn.simulate_chip("vectoradd", partitioned_baseline(), chip=TINY_CHIP)
        b = v.simulate_chip("vectoradd", partitioned_baseline(), chip=TINY_CHIP)
        assert a is b


class TestConsistencyWithSingleSM:
    def test_single_sm_chip_matches_runner_simulate(self):
        from repro.sm.serialize import result_to_dict

        rn = Runner("tiny")
        part = partitioned_baseline()
        solo = rn.simulate("needle", part)
        cr = rn.simulate_chip("needle", part, chip=ChipConfig.single_sm())
        assert result_to_dict(cr.per_sm[0]) == result_to_dict(solo)


@pytest.mark.parametrize("field", ["num_sms", "dram_bytes_per_cycle"])
def test_fingerprint_sensitivity(field):
    rn = Runner("tiny")
    base = rn.chip_sim_key("vectoradd", partitioned_baseline(), TINY_CHIP)
    changed_cfg = {
        "num_sms": ChipConfig(num_sms=3, dram_bytes_per_cycle=16.0, dram_channels=2),
        "dram_bytes_per_cycle": ChipConfig(
            num_sms=2, dram_bytes_per_cycle=32.0, dram_channels=2
        ),
    }[field]
    assert rn.chip_sim_key("vectoradd", partitioned_baseline(), changed_cfg) != base
