"""Chip-level simulation behaviour: conservation, contention, results."""

import pytest

from repro.chip import (
    ChipConfig,
    chip_fingerprint,
    chip_result_from_dict,
    chip_result_to_dict,
    simulate_chip,
)
from repro.core import partitioned_baseline
from repro.obs import Collector
from repro.sm import SMConfig, simulate
from tests.util import compiled, multi_warp_kernel, warp_alu_chain, warp_streaming_loads


def streaming_kernel(num_ctas=8, loads=16):
    """A memory-bound kernel whose CTAs stream disjoint address ranges."""
    warps = [warp_streaming_loads(loads, base=i << 22) for i in range(2)]
    return compiled(multi_warp_kernel(warps, num_ctas=num_ctas))


@pytest.fixture(scope="module")
def stream_k():
    return streaming_kernel()


class TestDramConservation:
    def test_chip_bytes_equal_sum_of_per_sm_bytes(self, stream_k):
        cfg = ChipConfig(num_sms=4, dram_bytes_per_cycle=32.0, dram_channels=2)
        cr = simulate_chip(stream_k, partitioned_baseline(), cfg)
        assert cr.dram_bytes == sum(r.dram_bytes for r in cr.per_sm)
        # ... and the shared channels moved exactly those bytes: every
        # port request landed on some channel, nothing lost or doubled.
        assert sum(cr.dram_channel_bytes) == cr.dram_bytes
        assert cr.dram_accesses == sum(r.dram_accesses for r in cr.per_sm)
        assert cr.dram_bytes > 0

    def test_partitioned_chip_has_no_channel_record(self, stream_k):
        cfg = ChipConfig(
            num_sms=2, dram_bytes_per_cycle=16.0, dram_partitioned=True
        )
        cr = simulate_chip(stream_k, partitioned_baseline(), cfg)
        assert cr.dram_channel_bytes == []
        assert cr.dram_bytes == sum(r.dram_bytes for r in cr.per_sm)


class TestWorkDistribution:
    def test_all_ctas_execute_exactly_once(self, stream_k):
        cfg = ChipConfig(num_sms=3, dram_bytes_per_cycle=24.0, dram_channels=3)
        cr = simulate_chip(stream_k, partitioned_baseline(), cfg)
        assert cr.total_ctas == len(stream_k.ctas)
        assert sum(r.instructions for r in cr.per_sm) == cr.instructions
        # Identical CTAs over one more SM than divides evenly: counts
        # may differ by at most the residual, but all are > 0 here.
        assert all(c > 0 for c in cr.ctas_per_sm)

    def test_more_sms_than_ctas_leaves_sms_idle(self):
        k = streaming_kernel(num_ctas=1)
        cfg = ChipConfig(num_sms=2, dram_bytes_per_cycle=16.0, dram_channels=2)
        cr = simulate_chip(k, partitioned_baseline(), cfg)
        assert cr.ctas_per_sm == [1, 0]
        assert cr.per_sm[1].instructions == 0
        assert cr.per_sm[1].cycles == 0.0
        assert cr.cycles == cr.per_sm[0].cycles

    def test_makespan_is_max_over_sms(self, stream_k):
        cfg = ChipConfig(num_sms=4, dram_bytes_per_cycle=32.0, dram_channels=2)
        cr = simulate_chip(stream_k, partitioned_baseline(), cfg)
        assert cr.cycles == max(r.cycles for r in cr.per_sm)


class TestContention:
    def test_shared_narrow_bus_slows_a_memory_bound_kernel(self, stream_k):
        # Two SMs squeezed through one SM's worth of bandwidth must be
        # slower per SM than an uncontended private channel.
        solo = simulate(stream_k, partitioned_baseline())
        cfg = ChipConfig(num_sms=2, dram_bytes_per_cycle=8.0, dram_channels=1)
        cr = simulate_chip(stream_k, partitioned_baseline(), cfg)
        assert cr.cycles > solo.cycles

    def test_wider_bus_relieves_contention(self, stream_k):
        part = partitioned_baseline()
        narrow = simulate_chip(
            stream_k, part, ChipConfig(num_sms=4, dram_bytes_per_cycle=8.0,
                                       dram_channels=1)
        )
        wide = simulate_chip(
            stream_k, part, ChipConfig(num_sms=4, dram_bytes_per_cycle=128.0,
                                       dram_channels=4)
        )
        assert wide.cycles < narrow.cycles

    def test_compute_bound_kernel_indifferent_to_sharing(self):
        k = compiled(multi_warp_kernel([warp_alu_chain(64)], num_ctas=4))
        part = partitioned_baseline()
        shared = simulate_chip(
            k, part, ChipConfig(num_sms=2, dram_bytes_per_cycle=16.0,
                                dram_channels=1)
        )
        private = simulate_chip(
            k, part, ChipConfig(num_sms=2, dram_bytes_per_cycle=16.0,
                                dram_partitioned=True)
        )
        assert shared.cycles == private.cycles


class TestObservability:
    def test_per_sm_stall_attribution_conserves_under_contention(self, stream_k):
        # Each SM's collector must conserve warp-cycles against the
        # *chip* makespan, including cycles spent queued behind the
        # other SM's DRAM traffic.
        n = 2
        cols = [Collector() for _ in range(n)]
        cfg = ChipConfig(num_sms=n, dram_bytes_per_cycle=8.0, dram_channels=1)
        cr = simulate_chip(
            stream_k, partitioned_baseline(), cfg, collectors=cols
        )
        for i, col in enumerate(cols):
            assert col.total_cycles == cr.cycles, f"SM {i}"
            assert col.conservation_errors() == [], f"SM {i}"
            assert cr.per_sm[i].stall_cycles, f"SM {i}"

    def test_collector_count_must_match(self, stream_k):
        cfg = ChipConfig(num_sms=2, dram_bytes_per_cycle=16.0)
        with pytest.raises(ValueError, match="one per SM"):
            simulate_chip(
                stream_k, partitioned_baseline(), cfg, collectors=[Collector()]
            )

    def test_instrumentation_never_changes_timing(self, stream_k):
        cfg = ChipConfig(num_sms=2, dram_bytes_per_cycle=16.0, dram_channels=2)
        plain = simulate_chip(stream_k, partitioned_baseline(), cfg)
        inst = simulate_chip(
            stream_k, partitioned_baseline(), cfg,
            collectors=[Collector(), Collector()],
        )
        assert inst.cycles == plain.cycles
        assert [r.cycles for r in inst.per_sm] == [r.cycles for r in plain.per_sm]


class TestConfig:
    def test_defaults_are_the_papers_chip(self):
        cfg = ChipConfig()
        assert cfg.num_sms == 32
        assert cfg.dram_bytes_per_cycle == 256.0
        assert cfg.sm_bandwidth_slice == 8.0

    def test_single_sm_carries_the_slice(self):
        cfg = ChipConfig.single_sm()
        assert cfg.num_sms == 1
        assert cfg.dram_partitioned
        assert cfg.sm_bandwidth_slice == SMConfig().dram_bytes_per_cycle

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(num_sms=0),
            dict(dram_bytes_per_cycle=0.0),
            dict(dram_channels=0),
        ],
    )
    def test_bad_construction(self, kwargs):
        with pytest.raises(ValueError):
            ChipConfig(**kwargs)

    def test_fingerprint_distinguishes_chips(self):
        a = chip_fingerprint(ChipConfig())
        b = chip_fingerprint(ChipConfig(num_sms=16))
        c = chip_fingerprint(ChipConfig(sm=SMConfig(alu_latency=99)))
        assert len({a, b, c}) == 3
        assert a == chip_fingerprint(ChipConfig())


class TestSerialization:
    def test_round_trip_is_exact(self, stream_k):
        cfg = ChipConfig(num_sms=2, dram_bytes_per_cycle=16.0, dram_channels=2)
        cr = simulate_chip(stream_k, partitioned_baseline(), cfg)
        d = chip_result_to_dict(cr)
        assert chip_result_to_dict(chip_result_from_dict(d)) == d

    def test_round_trip_survives_json(self, stream_k, tmp_path):
        import json

        from repro.chip import load_chip_result, save_chip_result

        cfg = ChipConfig(num_sms=2, dram_bytes_per_cycle=16.0, dram_channels=2)
        cr = simulate_chip(stream_k, partitioned_baseline(), cfg)
        path = tmp_path / "chip.json"
        save_chip_result(cr, path)
        loaded = load_chip_result(path)
        assert chip_result_to_dict(loaded) == chip_result_to_dict(cr)
        assert json.loads(path.read_text())["chip_version"] == 2

    def test_version_gate(self, stream_k):
        cfg = ChipConfig.single_sm()
        d = chip_result_to_dict(simulate_chip(stream_k, partitioned_baseline(), cfg))
        d["chip_version"] = 999
        with pytest.raises(ValueError, match="format version"):
            chip_result_from_dict(d)
