"""Unit tests for the chip-level CTA dispatcher."""

import pytest

from repro.chip import CTADispatcher


class TestDispatchOrder:
    def test_hands_out_grid_indices_in_order(self):
        d = CTADispatcher(num_ctas=5, num_sms=2)
        got = [d.next_cta(i % 2) for i in range(5)]
        assert got == [0, 1, 2, 3, 4]
        assert d.next_cta(0) is None
        assert d.next_cta(1) is None

    def test_faster_sm_pulls_more_work(self):
        # Whoever asks gets the next CTA -- no static striping.
        d = CTADispatcher(num_ctas=4, num_sms=2)
        d.next_cta(0)
        d.next_cta(0)
        d.next_cta(0)
        d.next_cta(1)
        assert d.assignments == [[0, 1, 2], [3]]

    def test_remaining_counts_down(self):
        d = CTADispatcher(num_ctas=3, num_sms=2)
        assert d.remaining == 3
        d.next_cta(1)
        assert d.remaining == 2

    def test_empty_grid(self):
        d = CTADispatcher(num_ctas=0, num_sms=4)
        assert d.remaining == 0
        assert d.next_cta(2) is None


class TestDispatchPort:
    def test_port_routes_to_its_sm(self):
        d = CTADispatcher(num_ctas=2, num_sms=2)
        p0, p1 = d.port(0), d.port(1)
        assert p1.next_cta() == 0
        assert p0.next_cta() == 1
        assert p0.remaining == 0 and p1.remaining == 0
        assert d.assignments == [[1], [0]]

    def test_port_is_a_cta_source(self):
        # The shape CTAScheduler expects: next_cta() and remaining.
        p = CTADispatcher(num_ctas=1, num_sms=1).port(0)
        assert p.remaining == 1
        assert p.next_cta() == 0
        assert p.next_cta() is None


class TestValidation:
    def test_bad_construction(self):
        with pytest.raises(ValueError):
            CTADispatcher(num_ctas=-1, num_sms=1)
        with pytest.raises(ValueError):
            CTADispatcher(num_ctas=4, num_sms=0)

    def test_next_cta_rejects_out_of_range_sm(self):
        d = CTADispatcher(num_ctas=4, num_sms=2)
        with pytest.raises(ValueError, match="sm_index 2 out of range"):
            d.next_cta(2)
        # A negative index would silently wrap to the last SM's list.
        with pytest.raises(ValueError, match="sm_index -1 out of range"):
            d.next_cta(-1)
        assert d.remaining == 4  # rejected asks hand out nothing

    def test_port_rejects_out_of_range_sm(self):
        d = CTADispatcher(num_ctas=4, num_sms=2)
        with pytest.raises(ValueError, match="sm_index 5 out of range"):
            d.port(5)
        with pytest.raises(ValueError, match="sm_index -2 out of range"):
            d.port(-2)
