"""Non-blocking memory system at chip scope.

Three contracts: a 1-SM chip still IS the single-SM simulator when the
MSHR path is on; the extended stall-conservation invariant (now
including ``mshr_full``) stays exact across kernels x DRAM styles x SM
counts; and the chip result surfaces a merged memsys summary.
"""

from dataclasses import replace

import pytest

from repro.chip import ChipConfig, simulate_chip
from repro.compiler import compile_kernel
from repro.core import partitioned_baseline
from repro.experiments.runner import Runner
from repro.kernels import get_benchmark
from repro.obs import ChipCollector
from repro.sm.serialize import result_to_dict

KERNELS = ("vectoradd", "matrixmul", "needle", "bfs", "dgemm", "aes")

NONBLOCKING = dict(mshr_entries=4, dram_banks=8, dram_row_hit_latency=160)


@pytest.fixture(scope="module")
def rn():
    return Runner("tiny")


@pytest.fixture(scope="module")
def partition():
    return partitioned_baseline()


@pytest.fixture(scope="module")
def compiled():
    return {k: compile_kernel(get_benchmark(k).build("tiny")) for k in KERNELS}


class TestSingleSMIdentity:
    @pytest.mark.parametrize("kernel", ("vectoradd", "matrixmul", "dgemm"))
    def test_one_sm_chip_equals_core_in_nonblocking_mode(
        self, rn, partition, kernel
    ):
        cfg = replace(rn.config, mshr_entries=16, dram_banks=8,
                      dram_row_hit_latency=160)
        nb = rn.variant(cfg)
        core = nb.simulate(kernel, partition)
        cr = simulate_chip(nb.compiled(kernel), partition, ChipConfig.single_sm(cfg))
        assert result_to_dict(cr.per_sm[0]) == result_to_dict(core)
        assert cr.cycles == core.cycles
        assert cr.notes["memsys"]["secondary_merges"] == (
            core.notes["memsys"]["mshr"]["secondary_merges"]
        )

    def test_one_sm_shared_system_matches_too(self, rn, partition):
        # Shared banked DRAMSystem with one channel: the addr decode
        # collapses to the private channel's, so timing is identical.
        cfg = replace(rn.config, mshr_entries=16, dram_banks=8,
                      dram_row_hit_latency=160)
        nb = rn.variant(cfg)
        shared = ChipConfig(
            num_sms=1,
            dram_bytes_per_cycle=cfg.dram_bytes_per_cycle,
            dram_channels=1,
            dram_partitioned=False,
            sm=cfg,
        )
        cr = simulate_chip(nb.compiled("matrixmul"), partition, shared)
        core = nb.simulate("matrixmul", partition)
        # Timing and traffic are identical; only the notes differ in
        # *placement* -- a shared system keeps row counters chip-wide
        # (the per-SM port has none), a private channel keeps its own.
        got, want = result_to_dict(cr.per_sm[0]), result_to_dict(core)
        got_notes, want_notes = got.pop("notes"), want.pop("notes")
        assert got == want
        assert got_notes["memsys"]["mshr"] == want_notes["memsys"]["mshr"]
        assert cr.notes["memsys"]["dram_row_hits"] == (
            want_notes["memsys"]["dram_row_hits"]
        )
        assert cr.notes["memsys"]["dram_row_misses"] == (
            want_notes["memsys"]["dram_row_misses"]
        )


class TestChipConservation:
    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize(
        "partitioned", (False, True), ids=("shared", "partitioned")
    )
    @pytest.mark.parametrize("num_sms", (1, 2, 3))
    def test_invariant_exact_nonblocking(
        self, rn, compiled, partition, kernel, partitioned, num_sms
    ):
        cfg = ChipConfig(
            num_sms=num_sms,
            dram_partitioned=partitioned,
            sm=replace(rn.config, **NONBLOCKING),
        )
        cc = ChipCollector.for_chip(cfg)
        simulate_chip(compiled[kernel], partition, cfg, chip_collector=cc)
        assert cc.conservation_errors() == []


class TestChipNotes:
    def test_blocking_chip_has_no_memsys_notes(self, rn, compiled, partition):
        cr = simulate_chip(compiled["vectoradd"], partition, ChipConfig(num_sms=2))
        assert "memsys" not in cr.notes
        assert all("memsys" not in r.notes for r in cr.per_sm)

    def test_chip_memsys_sums_per_sm_counters(self, rn, compiled, partition):
        cfg = ChipConfig(num_sms=2, sm=replace(rn.config, **NONBLOCKING))
        cr = simulate_chip(compiled["matrixmul"], partition, cfg)
        memsys = cr.notes["memsys"]
        assert memsys["mshr_entries"] == 4
        for key in ("primary_misses", "secondary_merges", "full_stalls",
                    "full_stall_cycles"):
            assert memsys[key] == sum(
                r.notes["memsys"]["mshr"][key] for r in cr.per_sm
            )
        # Shared system: row counters live on the system, not the SMs.
        assert "dram_row_hits" in memsys
        assert all("dram_row_hits" not in r.notes["memsys"] for r in cr.per_sm)

    def test_partitioned_chip_sums_private_row_counters(
        self, rn, compiled, partition
    ):
        cfg = ChipConfig(
            num_sms=2, dram_partitioned=True, sm=replace(rn.config, **NONBLOCKING)
        )
        cr = simulate_chip(compiled["matrixmul"], partition, cfg)
        memsys = cr.notes["memsys"]
        assert memsys["dram_row_hits"] == sum(
            r.notes["memsys"]["dram_row_hits"] for r in cr.per_sm
        )
        assert memsys["dram_row_misses"] == sum(
            r.notes["memsys"]["dram_row_misses"] for r in cr.per_sm
        )
