"""Unit and property tests for the shared-memory allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import SharedMemoryFile

KB = 1024


class TestAllocation:
    def test_uniform_cta_allocations(self):
        f = SharedMemoryFile(64 * KB)
        bases = [f.alloc(8 * KB) for _ in range(8)]
        assert None not in bases
        assert len(set(bases)) == 8
        assert f.alloc(8 * KB) is None  # full
        assert f.bytes_free == 0

    def test_free_and_reuse(self):
        f = SharedMemoryFile(16 * KB)
        a = f.alloc(8 * KB)
        b = f.alloc(8 * KB)
        f.free(a)
        c = f.alloc(8 * KB)
        assert c == a
        f.free(b)
        f.free(c)
        assert f.bytes_in_use == 0
        # Coalescing: a full-capacity allocation must now succeed.
        assert f.alloc(16 * KB) is not None

    def test_zero_byte_allocation(self):
        f = SharedMemoryFile(4 * KB)
        assert f.alloc(0) == 0
        assert f.bytes_in_use == 0

    def test_zero_capacity_file(self):
        f = SharedMemoryFile(0)
        assert f.alloc(1) is None
        assert f.alloc(0) == 0

    def test_double_free_rejected(self):
        f = SharedMemoryFile(4 * KB)
        a = f.alloc(1 * KB)
        f.free(a)
        with pytest.raises(KeyError):
            f.free(a)

    def test_negative_alloc_rejected(self):
        with pytest.raises(ValueError):
            SharedMemoryFile(4 * KB).alloc(-1)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            SharedMemoryFile(-1)


@given(
    st.lists(
        st.tuples(st.booleans(), st.integers(min_value=1, max_value=4096)),
        max_size=60,
    )
)
@settings(max_examples=80, deadline=None)
def test_allocator_never_overlaps(operations):
    f = SharedMemoryFile(16 * KB)
    live: dict[int, int] = {}
    for is_alloc, size in operations:
        if is_alloc or not live:
            base = f.alloc(size)
            if base is not None:
                # No overlap with any live allocation.
                for b, s in live.items():
                    assert base + size <= b or b + s <= base
                live[base] = size
        else:
            base = sorted(live)[0]
            f.free(base)
            del live[base]
    assert f.bytes_in_use == sum(live.values())
    assert 0 <= f.bytes_free <= 16 * KB
