"""Unit tests for the partitioned and unified bank-conflict models."""

import pytest

from repro.compiler.compiled import CompiledOp
from repro.core import DesignStyle, MemoryPartition, partitioned_baseline
from repro.core.partition import KB
from repro.isa import OpClass
from repro.memory import PartitionedBanks, UnifiedBanks, make_bank_model
from repro.memory.banks import ClusterPortUnifiedBanks


def unified_partition(rf_kb=256, smem_kb=64, cache_kb=64):
    return MemoryPartition(
        DesignStyle.UNIFIED,
        rf_bytes=rf_kb * KB,
        smem_bytes=smem_kb * KB,
        cache_bytes=cache_kb * KB,
    )


def make_op(
    op=OpClass.ALU,
    mrf_reads=(),
    addrs=None,
    active=32,
):
    return CompiledOp(
        op=op,
        dst=None,
        srcs=tuple(mrf_reads),
        mrf_reads=tuple(mrf_reads),
        mrf_writes=(),
        lrf_reads=0,
        orf_reads=0,
        lrf_writes=0,
        orf_writes=0,
        addrs=tuple(addrs) if addrs is not None else None,
        active=active,
    )


class TestPartitionedRegisterConflicts:
    def test_two_registers_same_bank_conflict(self):
        banks = PartitionedBanks(partitioned_baseline())
        # Registers 0 and 4 both map to bank 0 (r % 4).
        r = banks.access(make_op(mrf_reads=(0, 4)))
        assert r.penalty == 1
        assert r.max_bank_accesses == 2

    def test_registers_in_distinct_banks_conflict_free(self):
        banks = PartitionedBanks(partitioned_baseline())
        r = banks.access(make_op(mrf_reads=(0, 1, 2, 3)))
        assert r.penalty == 0
        assert r.max_bank_accesses == 1

    def test_no_mrf_operands_no_penalty(self):
        banks = PartitionedBanks(partitioned_baseline())
        r = banks.access(make_op())
        assert r.penalty == 0
        assert r.max_bank_accesses == 0


class TestPartitionedSharedConflicts:
    def _shared(self, addrs):
        return make_op(OpClass.LOAD_SHARED, addrs=addrs, active=len(addrs))

    def test_unit_stride_conflict_free(self):
        banks = PartitionedBanks(partitioned_baseline())
        r = banks.access(self._shared([4 * t for t in range(32)]))
        assert r.penalty == 0

    def test_broadcast_single_word(self):
        banks = PartitionedBanks(partitioned_baseline())
        r = banks.access(self._shared([64] * 32))
        assert r.penalty == 0
        assert r.max_bank_accesses == 1

    def test_stride_128_serialises_on_one_bank(self):
        banks = PartitionedBanks(partitioned_baseline())
        r = banks.access(self._shared([128 * t for t in range(32)]))
        assert r.penalty == 31
        assert r.max_bank_accesses == 32

    def test_two_way_conflict(self):
        banks = PartitionedBanks(partitioned_baseline())
        # Pairs of threads hit the same bank with different words
        # (second half offset by a full 32-bank sweep of 128 bytes).
        addrs = [(t % 16) * 4 + (t // 16) * 128 for t in range(32)]
        r = banks.access(self._shared(addrs))
        assert r.penalty == 1

    def test_shared_base_rebasing_shifts_banks(self):
        banks = PartitionedBanks(partitioned_baseline())
        addrs = [128 * t for t in range(32)]
        a = banks.access(self._shared(addrs))
        b = banks.access(make_op(OpClass.LOAD_SHARED, addrs=addrs), shared_base=4)
        # Rebasing cannot fix a stride-128 pattern; both fully conflict.
        assert a.penalty == b.penalty == 31


class TestPartitionedCachePath:
    def test_single_line_access_free(self):
        banks = PartitionedBanks(partitioned_baseline())
        r = banks.access(
            make_op(OpClass.LOAD_GLOBAL, addrs=[4 * t for t in range(32)]),
            segments=[0],
        )
        assert r.penalty == 0
        assert r.data_row_accesses == 8

    def test_multi_line_serialises_on_tag_port(self):
        banks = PartitionedBanks(partitioned_baseline())
        r = banks.access(
            make_op(OpClass.LOAD_GLOBAL, addrs=[128 * t for t in range(32)]),
            segments=[128 * t for t in range(32)],
        )
        assert r.penalty == 31
        assert r.data_row_accesses == 32 * 8

    def test_register_and_memory_penalties_do_not_add(self):
        # Separate structures: penalty is the max, not the sum.
        banks = PartitionedBanks(partitioned_baseline())
        r = banks.access(
            make_op(OpClass.LOAD_GLOBAL, mrf_reads=(0, 4), addrs=[0] * 32),
            segments=[0, 128],
        )
        assert r.penalty == 1


class TestUnifiedShared:
    def _shared(self, addrs):
        return make_op(OpClass.LOAD_SHARED, addrs=addrs, active=len(addrs))

    def test_unit_stride_coalesces_to_8_clusters(self):
        banks = UnifiedBanks(unified_partition())
        # 32 threads x 4B = 8 distinct 16-byte rows -> one per cluster.
        r = banks.access(self._shared([4 * t for t in range(32)]))
        assert r.penalty == 0
        assert r.data_row_accesses == 8

    def test_row_broadcast(self):
        banks = UnifiedBanks(unified_partition())
        r = banks.access(self._shared([0] * 32))
        assert r.penalty == 0
        assert r.data_row_accesses == 1

    def test_same_bank_rows_serialise(self):
        banks = UnifiedBanks(unified_partition())
        # Stride 512B: every row lands in cluster 0, bank 0.
        r = banks.access(self._shared([512 * t for t in range(32)]))
        assert r.penalty == 31

    def test_strict_cluster_port_serialises_across_banks(self):
        # Stride 128B: rows rotate through cluster 0's four banks; the
        # strict Section 4.2 port still serialises them, the default
        # per-bank model lets the four banks work in parallel.
        addrs = [128 * t for t in range(32)]
        strict = ClusterPortUnifiedBanks(unified_partition())
        assert strict.access(self._shared(addrs)).penalty == 31
        relaxed = UnifiedBanks(unified_partition())
        assert relaxed.access(self._shared(addrs)).penalty == 7

    def test_sixteen_byte_stride(self):
        # 32 distinct rows spread over all 32 banks: conflict-free in the
        # paper's per-bank model, 4 cycles under the strict cluster port.
        addrs = [16 * t for t in range(32)]
        assert UnifiedBanks(unified_partition()).access(self._shared(addrs)).penalty == 0
        strict = ClusterPortUnifiedBanks(unified_partition())
        assert strict.access(self._shared(addrs)).penalty == 3


class TestUnifiedArbitration:
    def test_register_and_memory_same_bank_conflict(self):
        banks = UnifiedBanks(unified_partition())
        # A cache line at line index 0 occupies bank 0 in every cluster;
        # register 0 and 4 also live in bank 0.
        r = banks.access(
            make_op(OpClass.LOAD_GLOBAL, mrf_reads=(0, 4), addrs=[0] * 32),
            segments=[0],
        )
        # bank 0 sees: 2 register reads + 1 line access = 3 accesses.
        assert r.penalty == 2
        assert banks.arbitration_conflicts == 1

    def test_register_and_memory_different_banks_free(self):
        banks = UnifiedBanks(unified_partition())
        # Line index 1 -> bank 1; registers 0, 4 -> bank 0.
        r = banks.access(
            make_op(OpClass.LOAD_GLOBAL, mrf_reads=(0, 4), addrs=[128] * 32),
            segments=[128],
        )
        assert r.penalty == 1  # register conflict only
        assert banks.arbitration_conflicts == 0

    def test_histogram_records_all_accesses(self):
        banks = UnifiedBanks(unified_partition())
        banks.access(make_op(mrf_reads=(0, 1)))
        banks.access(make_op(mrf_reads=(0, 4)))
        banks.access(make_op())
        h = banks.histogram
        assert h.total == 3
        assert h.at_most_1 == 2
        assert h.exactly_2 == 1
        f = h.fractions()
        assert f["<=1"] == pytest.approx(2 / 3)


class TestFactory:
    def test_dispatch(self):
        assert isinstance(make_bank_model(partitioned_baseline()), PartitionedBanks)
        assert isinstance(make_bank_model(unified_partition()), UnifiedBanks)
        assert isinstance(
            make_bank_model(unified_partition(), cluster_port=True),
            ClusterPortUnifiedBanks,
        )

    def test_unified_banks_reject_partitioned_layout(self):
        with pytest.raises(ValueError, match="unified"):
            UnifiedBanks(partitioned_baseline())
