"""Unit and property tests for the write-through data cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import DataCache

KB = 1024


class TestBasicBehaviour:
    def test_cold_miss_then_hit(self):
        c = DataCache(64 * KB)
        assert not c.read_line(0)
        assert c.read_line(0)
        assert c.stats.read_misses == 1
        assert c.stats.read_hits == 1

    def test_zero_capacity_always_misses(self):
        c = DataCache(0)
        assert not c.enabled
        for _ in range(3):
            assert not c.read_line(128)
        assert c.stats.read_misses == 3
        assert not c.contains(128)

    def test_write_through_no_allocate(self):
        c = DataCache(64 * KB)
        assert not c.write_line(0)  # miss does not install
        assert not c.contains(0)
        assert not c.read_line(0)  # still a read miss
        assert c.write_line(0)  # now a write hit
        assert c.stats.write_hits == 1
        assert c.stats.write_misses == 1

    def test_capacity_and_sets(self):
        c = DataCache(64 * KB, assoc=4, line_bytes=128)
        assert c.num_sets == 128

    def test_misaligned_capacity_rejected_by_default(self):
        # A capacity that is not a whole number of sets must fail
        # loudly: rounding down silently would model less cache than
        # the partition allocated.
        with pytest.raises(ValueError, match="384 B would be silently unmodeled"):
            DataCache(52 * KB + 384)

    def test_misaligned_capacity_floor_opt_in(self):
        # The unified allocator can leave any remainder as cache; it
        # opts into explicit rounding and the slack stays visible.
        c = DataCache(52 * KB + 384, misaligned="floor")
        assert c.enabled
        assert c.num_sets == (52 * KB + 384) // 512
        assert c.slack_bytes == 384

    def test_aligned_capacity_has_no_slack(self):
        c = DataCache(64 * KB)
        assert c.slack_bytes == 0

    def test_bad_misaligned_mode(self):
        with pytest.raises(ValueError, match="misaligned"):
            DataCache(64 * KB, misaligned="truncate")


class TestReplacement:
    def test_lru_eviction_within_set(self):
        # Direct-mapped-like tiny cache: 1 set, 4 ways.
        c = DataCache(512, assoc=4, line_bytes=128)
        assert c.num_sets == 1
        for i in range(4):
            c.read_line(i * 128)
        assert c.resident_lines == 4
        c.read_line(0)  # refresh line 0
        c.read_line(4 * 128)  # evicts LRU = line 1
        assert c.contains(0)
        assert not c.contains(128)
        assert c.contains(4 * 128)

    def test_working_set_within_capacity_has_no_capacity_misses(self):
        c = DataCache(16 * KB)
        lines = [i * 128 for i in range(16 * KB // 128)]
        for a in lines:
            c.read_line(a)
        for _ in range(3):
            for a in lines:
                assert c.read_line(a)

    def test_flush(self):
        c = DataCache(16 * KB)
        c.read_line(0)
        c.flush()
        assert c.resident_lines == 0
        assert not c.contains(0)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(capacity_bytes=-1),
            dict(capacity_bytes=1024, assoc=0),
            dict(capacity_bytes=1024, line_bytes=0),
        ],
    )
    def test_bad_args(self, kwargs):
        with pytest.raises(ValueError):
            DataCache(**kwargs)


@given(
    capacity_kb=st.sampled_from([0, 1, 4, 64]),
    addrs=st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=300),
)
@settings(max_examples=60, deadline=None)
def test_invariants(capacity_kb, addrs):
    c = DataCache(capacity_kb * KB)
    for a in addrs:
        line = a - a % 128
        c.read_line(line)
        assert c.contains(line) == c.enabled  # a read always installs (if enabled)
        assert c.resident_lines <= max(1, capacity_kb * KB // 128)
    assert c.stats.reads == len(addrs)
    assert 0.0 <= c.stats.hit_rate <= 1.0
