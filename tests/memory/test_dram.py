"""Unit tests for the DRAM channel model."""

import pytest

from repro.memory import DRAMChannel


class TestTimingModel:
    def test_idle_channel_latency(self):
        d = DRAMChannel(bytes_per_cycle=8, latency=400)
        done = d.request(now=0, nbytes=128)
        assert done == 400 + 16  # latency plus 128B at 8B/cycle

    def test_bandwidth_queueing(self):
        d = DRAMChannel(bytes_per_cycle=8, latency=400)
        first = d.request(0, 128)
        second = d.request(0, 128)
        assert second == first + 16  # serialised behind the first transfer

    def test_gap_allows_immediate_service(self):
        d = DRAMChannel(bytes_per_cycle=8, latency=400)
        d.request(0, 128)
        done = d.request(1000, 128)
        assert done == 1000 + 400 + 16

    def test_requests_must_be_time_ordered(self):
        d = DRAMChannel()
        d.request(100, 32)
        with pytest.raises(ValueError, match="time-ordered"):
            d.request(50, 32)


class TestTrafficAccounting:
    def test_line_fill_is_one_access(self):
        # The paper's DRAM-access metric counts transactions: one line
        # fill is a single access (Table 1's uncached columns show ~4x
        # for streaming kernels because sectors are counted separately).
        d = DRAMChannel(transaction_bytes=32)
        d.request(0, 128)
        assert d.accesses == 1
        assert d.bytes_transferred == 128
        assert d.bits_transferred == 1024

    def test_each_request_counts_once(self):
        d = DRAMChannel(transaction_bytes=32)
        d.request(0, 32)
        d.request(0, 32)
        d.request(0, 40)
        assert d.accesses == 3

    def test_utilisation(self):
        d = DRAMChannel(bytes_per_cycle=8)
        d.request(0, 800)
        assert d.utilisation(1000) == pytest.approx(0.1)
        assert d.utilisation(0) == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(bytes_per_cycle=0),
            dict(latency=-1),
            dict(transaction_bytes=0),
        ],
    )
    def test_bad_construction(self, kwargs):
        with pytest.raises(ValueError):
            DRAMChannel(**kwargs)

    def test_zero_byte_request_rejected(self):
        d = DRAMChannel()
        with pytest.raises(ValueError):
            d.request(0, 0)
