"""Unit tests for the DRAM models: private channel and shared system."""

import pytest

from repro.memory import DRAMChannel, DRAMSystem
from repro.memory.dram import channel_utilisation


class TestTimingModel:
    def test_idle_channel_latency(self):
        d = DRAMChannel(bytes_per_cycle=8, latency=400)
        done = d.request(now=0, nbytes=128)
        assert done == 400 + 16  # latency plus 128B at 8B/cycle

    def test_bandwidth_queueing(self):
        d = DRAMChannel(bytes_per_cycle=8, latency=400)
        first = d.request(0, 128)
        second = d.request(0, 128)
        assert second == first + 16  # serialised behind the first transfer

    def test_gap_allows_immediate_service(self):
        d = DRAMChannel(bytes_per_cycle=8, latency=400)
        d.request(0, 128)
        done = d.request(1000, 128)
        assert done == 1000 + 400 + 16

    def test_requests_must_be_time_ordered(self):
        d = DRAMChannel()
        d.request(100, 32)
        with pytest.raises(ValueError, match="non-decreasing time order"):
            d.request(50, 32)

    def test_rejected_request_leaves_accounting_untouched(self):
        # A refused request must not corrupt bus state: the channel
        # still answers later (valid) requests as if it never happened.
        d = DRAMChannel(bytes_per_cycle=8, latency=400)
        d.request(100, 32)
        free_at, accesses, nbytes = d.free_at, d.accesses, d.bytes_transferred
        for bad in ((50, 32), (200, 0), (200, -8)):
            with pytest.raises(ValueError):
                d.request(*bad)
        assert (d.free_at, d.accesses, d.bytes_transferred) == (
            free_at, accesses, nbytes,
        )
        assert d.request(200, 32) == 200 + 400 + 4


class TestTrafficAccounting:
    def test_line_fill_is_one_access(self):
        # The paper's DRAM-access metric counts transactions: one line
        # fill is a single access (Table 1's uncached columns show ~4x
        # for streaming kernels because sectors are counted separately).
        d = DRAMChannel(transaction_bytes=32)
        d.request(0, 128)
        assert d.accesses == 1
        assert d.bytes_transferred == 128
        assert d.bits_transferred == 1024

    def test_each_request_counts_once(self):
        d = DRAMChannel(transaction_bytes=32)
        d.request(0, 32)
        d.request(0, 32)
        d.request(0, 40)
        assert d.accesses == 3

    def test_utilisation(self):
        d = DRAMChannel(bytes_per_cycle=8)
        d.request(0, 800)
        assert d.utilisation(1000) == pytest.approx(0.1)
        assert d.utilisation(0) == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(bytes_per_cycle=0),
            dict(latency=-1),
            dict(transaction_bytes=0),
        ],
    )
    def test_bad_construction(self, kwargs):
        with pytest.raises(ValueError):
            DRAMChannel(**kwargs)

    def test_zero_byte_request_rejected(self):
        d = DRAMChannel()
        with pytest.raises(ValueError, match="must be positive"):
            d.request(0, 0)

    def test_negative_byte_request_rejected(self):
        d = DRAMChannel()
        with pytest.raises(ValueError, match="must be positive"):
            d.request(0, -32)


class TestDRAMSystem:
    def test_one_channel_system_matches_private_channel(self):
        # The N=1 reduction the chip simulator's bit-identity rests on:
        # a single-channel system serving one source reserves the exact
        # bus intervals and completion times of a DRAMChannel.
        chan = DRAMChannel(bytes_per_cycle=8, latency=400)
        port = DRAMSystem(bytes_per_cycle=8, channels=1, latency=400).port(0)
        for now, nbytes in ((0, 128), (5, 32), (100, 64), (100, 128)):
            assert port.request(now, nbytes) == chan.request(now, nbytes)
        assert port.free_at == chan.free_at
        assert port.accesses == chan.accesses
        assert port.bytes_transferred == chan.bytes_transferred

    def test_fcfs_between_sources(self):
        # Two SMs hitting one channel: the later arrival queues behind
        # the reserved bus time of the earlier one.
        sys = DRAMSystem(bytes_per_cycle=8, channels=1, latency=400)
        a, b = sys.port(0), sys.port(1)
        first = a.request(0, 128)  # bus busy [0, 16)
        second = b.request(0, 128)  # queues: bus busy [16, 32)
        assert second == first + 16

    def test_sources_may_interleave_out_of_order(self):
        # Per-source streams are monotone; the *interleaving* is not.
        sys = DRAMSystem(bytes_per_cycle=8, channels=1, latency=400)
        a, b = sys.port(0), sys.port(1)
        a.request(100, 32)
        done = b.request(50, 32)  # earlier timestamp, later arrival: queues
        assert done == 104 + 400 + 4

    def test_per_source_time_order_enforced(self):
        port = DRAMSystem().port(3)
        port.request(100, 32)
        with pytest.raises(ValueError, match="SM 3"):
            port.request(50, 32)

    def test_non_positive_bytes_rejected(self):
        port = DRAMSystem().port(0)
        for bad in (0, -8):
            with pytest.raises(ValueError, match="must be positive"):
                port.request(0, bad)

    def test_least_loaded_channel_wins(self):
        sys = DRAMSystem(bytes_per_cycle=16, channels=2, latency=0)
        p = sys.port(0)
        p.request(0, 80)  # channel 0 busy until 10 (8 B/cycle each)
        p.request(0, 8)  # channel 1 is free: starts immediately
        assert sys.channel_free_at == [10.0, 1.0]
        p.request(0, 8)  # channel 1 still frees earliest
        assert sys.channel_free_at == [10.0, 2.0]

    def test_port_accounting_sums_to_system(self):
        sys = DRAMSystem(bytes_per_cycle=16, channels=2, latency=400)
        a, b = sys.port(0), sys.port(1)
        a.request(0, 128)
        b.request(0, 64)
        a.request(10, 32)
        assert sys.accesses == a.accesses + b.accesses == 3
        assert sys.bytes_transferred == a.bytes_transferred + b.bytes_transferred
        assert sys.bytes_transferred == sum(sys.channel_bytes)
        assert sys.bits_transferred == 8 * 224

    def test_port_free_at_is_per_source(self):
        sys = DRAMSystem(bytes_per_cycle=8, channels=1, latency=0)
        a, b = sys.port(0), sys.port(1)
        a.request(0, 80)  # bus busy [0, 10)
        b.request(0, 8)  # queues: [10, 11)
        assert a.free_at == 10.0
        assert b.free_at == 11.0
        assert sys.free_at == 11.0

    def test_observer_sees_bus_busy_interval(self):
        seen = []
        sys = DRAMSystem(bytes_per_cycle=8, channels=1, latency=400)
        p = sys.port(0, observer=lambda s, e, n: seen.append((s, e, n)))
        p.request(0, 128)
        p.request(0, 64)
        assert seen == [(0.0, 16.0, 128), (16.0, 24.0, 64)]

    def test_utilisation(self):
        sys = DRAMSystem(bytes_per_cycle=16, channels=2)
        sys.port(0).request(0, 800)
        assert sys.utilisation(100) == pytest.approx(0.5)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(bytes_per_cycle=0),
            dict(channels=0),
            dict(latency=-1),
            dict(transaction_bytes=0),
        ],
    )
    def test_bad_construction(self, kwargs):
        with pytest.raises(ValueError):
            DRAMSystem(**kwargs)


class TestRowBufferTiming:
    """Open-page banked timing on a private channel."""

    def _banked(self):
        return DRAMChannel(
            bytes_per_cycle=8, latency=400, banks=4, row_bytes=2048,
            row_hit_latency=160,
        )

    def test_first_access_misses_then_same_row_hits(self):
        d = self._banked()
        first = d.request(0, 128, addr=0)  # opens bank 0 row 0
        second = d.request(100, 128, addr=128)  # same 2 KB row
        assert first == 400 + 16
        assert second == 100 + 160 + 16
        assert (d.row_hits, d.row_misses) == (1, 1)

    def test_banks_hold_independent_open_rows(self):
        d = self._banked()
        d.request(0, 128, addr=0)  # bank 0, row 0: miss
        d.request(1, 128, addr=2048)  # bank 1, row 0: miss
        d.request(2, 128, addr=64)  # bank 0 still open: hit
        d.request(3, 128, addr=2100)  # bank 1 still open: hit
        assert (d.row_hits, d.row_misses) == (2, 2)

    def test_row_conflict_evicts_open_row(self):
        d = self._banked()
        d.request(0, 128, addr=0)  # bank 0, row 0: miss
        d.request(1, 128, addr=4 * 2048)  # bank 0, row 1: miss, evicts
        done = d.request(2, 128, addr=0)  # row 0 again: miss
        assert done == 32 + 400 + 16  # queued behind two transfers
        assert d.row_misses == 3 and d.row_hits == 0

    def test_addressless_request_pays_full_latency(self):
        d = self._banked()
        done = d.request(0, 128)
        assert done == 400 + 16
        assert (d.row_hits, d.row_misses) == (0, 1)

    def test_flat_channel_counts_no_rows(self):
        # The degenerate case tracks nothing: addresses are ignored and
        # the timing is identical to the legacy flat model.
        flat = DRAMChannel(bytes_per_cycle=8, latency=400)
        degenerate = DRAMChannel(
            bytes_per_cycle=8, latency=400, banks=1, row_hit_latency=400
        )
        for now, nbytes, addr in ((0, 128, 0), (5, 32, 0), (50, 64, 8192)):
            assert degenerate.request(now, nbytes, addr) == flat.request(now, nbytes)
        assert (degenerate.row_hits, degenerate.row_misses) == (0, 0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(banks=0),
            dict(row_bytes=0),
            dict(row_hit_latency=-1),
            dict(row_hit_latency=401),  # must not exceed the miss latency
        ],
    )
    def test_bad_row_parameters(self, kwargs):
        with pytest.raises(ValueError):
            DRAMChannel(latency=400, **kwargs)
        with pytest.raises(ValueError):
            DRAMSystem(latency=400, **kwargs)


class TestSystemRowBuffer:
    """Banked timing and address routing on the shared system."""

    def test_addr_routes_to_fixed_channel(self):
        # Addressed requests go where the decode says, NOT to the
        # least-loaded channel: bank state is meaningless otherwise.
        sys = DRAMSystem(bytes_per_cycle=16, channels=2, latency=400,
                         banks=2, row_hit_latency=160)
        p = sys.port(0)
        p.request(0, 128, addr=2048)  # chunk 1 -> channel 1
        p.request(0, 128, addr=2048 + 64)  # channel 1 again, though 0 is idle
        assert sys.channel_accesses == [0, 2]
        assert (sys.row_hits, sys.row_misses) == (1, 1)

    def test_addressless_requests_keep_least_loaded_balancing(self):
        sys = DRAMSystem(bytes_per_cycle=16, channels=2, latency=400,
                         banks=2, row_hit_latency=160)
        p = sys.port(0)
        p.request(0, 80)
        p.request(0, 8)
        assert sys.channel_accesses == [1, 1]
        assert sys.row_misses == 2  # address-less never hits

    def test_one_channel_banked_system_matches_banked_channel(self):
        # The N=1 reduction extends to row-buffer timing: with one
        # channel the system's addr decode collapses to the channel's.
        chan = DRAMChannel(bytes_per_cycle=8, latency=400, banks=4,
                           row_bytes=2048, row_hit_latency=160)
        port = DRAMSystem(bytes_per_cycle=8, channels=1, latency=400,
                          banks=4, row_bytes=2048, row_hit_latency=160).port(0)
        for now, nbytes, addr in (
            (0, 128, 0), (5, 32, 128), (10, 128, 2048),
            (20, 128, 4 * 2048), (30, 64, 0), (40, 128, None),
        ):
            assert port.request(now, nbytes, addr) == chan.request(now, nbytes, addr)
        assert port.system.row_hits == chan.row_hits
        assert port.system.row_misses == chan.row_misses


class TestUtilisationUnclamped:
    """Regression: over-subscription must be visible, not clamped away."""

    def test_oversubscribed_channel_reports_ratio_above_one(self):
        d = DRAMChannel(bytes_per_cycle=8)
        d.request(0, 1600)  # 200 bus-busy cycles
        assert d.utilisation(100) == pytest.approx(2.0)

    def test_oversubscribed_system_reports_ratio_above_one(self):
        sys = DRAMSystem(bytes_per_cycle=16, channels=2)
        sys.port(0).request(0, 3200)
        assert sys.utilisation(100) > 1.0

    def test_standalone_helper_is_unclamped(self):
        assert channel_utilisation(1600, 8.0, 100.0) == pytest.approx(2.0)
        assert channel_utilisation(800, 8.0, 1000.0) == pytest.approx(0.1)
        assert channel_utilisation(800, 8.0, 0.0) == 0.0
