"""Property test: the DataCache against an executable reference model.

The reference is a direct, obviously-correct implementation of a
set-associative LRU write-through no-write-allocate cache built on
plain dicts and lists.  Hypothesis drives both with identical access
streams; hit/miss decisions and final contents must agree exactly.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import DataCache


class ReferenceCache:
    """Straight-line reference: list-of-lists LRU sets."""

    def __init__(self, capacity: int, assoc: int, line: int) -> None:
        self.assoc = assoc
        self.line = line
        self.num_sets = capacity // (line * assoc)
        self.sets = [[] for _ in range(self.num_sets)]  # MRU at the end

    def _set(self, line_addr: int):
        idx = line_addr // self.line
        return self.sets[idx % self.num_sets], idx

    def read(self, line_addr: int) -> bool:
        if not self.num_sets:
            return False
        s, tag = self._set(line_addr)
        if tag in s:
            s.remove(tag)
            s.append(tag)
            return True
        if len(s) >= self.assoc:
            s.pop(0)
        s.append(tag)
        return False

    def write(self, line_addr: int) -> bool:
        if not self.num_sets:
            return False
        s, tag = self._set(line_addr)
        if tag in s:
            s.remove(tag)
            s.append(tag)
            return True
        return False

    def contents(self) -> set:
        return {t for s in self.sets for t in s}


@given(
    capacity_lines=st.sampled_from([0, 4, 8, 32, 128]),
    assoc=st.sampled_from([1, 2, 4]),
    stream=st.lists(
        st.tuples(st.booleans(), st.integers(min_value=0, max_value=255)),
        max_size=400,
    ),
)
@settings(max_examples=120, deadline=None)
def test_cache_matches_reference(capacity_lines, assoc, stream):
    line = 128
    capacity = capacity_lines * line
    if capacity and capacity // (line * assoc) == 0:
        capacity = line * assoc  # at least one set
    dut = DataCache(capacity, assoc=assoc, line_bytes=line)
    ref = ReferenceCache(capacity, assoc, line)
    for is_write, line_idx in stream:
        addr = line_idx * line
        if is_write:
            assert dut.write_line(addr) == ref.write(addr)
        else:
            assert dut.read_line(addr) == ref.read(addr)
    # Final resident sets agree.
    dut_contents = {
        tag for s in dut._sets for tag in s
    }
    assert dut_contents == ref.contents()
