"""Unit and property tests for the memory coalescer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import coalesce_lines, coalesce_sectors
from repro.memory.coalescer import sectors_in_line


class TestLines:
    def test_unit_stride_warp_is_one_line(self):
        addrs = [4 * t for t in range(32)]
        assert coalesce_lines(addrs) == [0]

    def test_offset_unit_stride_spans_two_lines(self):
        addrs = [64 + 4 * t for t in range(32)]
        assert coalesce_lines(addrs) == [0, 128]

    def test_strided_access_explodes(self):
        addrs = [128 * t for t in range(32)]
        assert len(coalesce_lines(addrs)) == 32

    def test_same_address_broadcast(self):
        assert coalesce_lines([1000] * 32) == [896]

    def test_results_sorted_and_aligned(self):
        addrs = [5000, 1, 120, 130, 127, 129]
        lines = coalesce_lines(addrs)
        assert lines == sorted(lines)
        assert all(a % 128 == 0 for a in lines)


class TestSectors:
    def test_unit_stride_warp_is_four_sectors(self):
        addrs = [4 * t for t in range(32)]
        assert len(coalesce_sectors(addrs)) == 4

    def test_sector_alignment(self):
        assert coalesce_sectors([31, 32, 33]) == [0, 32]

    def test_sectors_in_line(self):
        assert sectors_in_line(0) == 4
        with pytest.raises(ValueError):
            sectors_in_line(0, line_bytes=100, sector_bytes=32)


@given(st.lists(st.integers(min_value=0, max_value=1 << 40), min_size=1, max_size=32))
@settings(max_examples=100, deadline=None)
def test_every_address_covered(addrs):
    lines = coalesce_lines(addrs)
    sectors = coalesce_sectors(addrs)
    for a in addrs:
        assert a - a % 128 in lines
        assert a - a % 32 in sectors
    # No more lines than distinct addresses, and sectors refine lines.
    assert len(lines) <= len(set(addrs))
    assert len(sectors) >= len(lines)
    assert len(sectors) <= 4 * len(lines)
