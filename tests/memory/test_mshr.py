"""Unit tests for the MSHR file (non-blocking miss tracking)."""

import pytest

from repro.memory import MSHRFile


class TestAllocation:
    def test_primary_miss_allocates(self):
        m = MSHRFile(4)
        m.allocate(0x100, fill_complete=400.0, now=0.0)
        assert m.primary_misses == 1
        assert m.outstanding_count == 1
        assert m.outstanding(0x100, 10.0) == 400.0

    def test_other_lines_are_not_outstanding(self):
        m = MSHRFile(4)
        m.allocate(0x100, 400.0, 0.0)
        assert m.outstanding(0x180, 10.0) is None

    def test_fill_retires_at_completion(self):
        # A fill landing at or before `now` is in the cache, not in
        # flight: the lookup must consult the cache instead.
        m = MSHRFile(4)
        m.allocate(0x100, 400.0, 0.0)
        assert m.outstanding(0x100, 399.9) == 400.0
        assert m.outstanding(0x100, 400.0) is None
        assert m.outstanding_count == 0

    def test_duplicate_allocation_rejected(self):
        m = MSHRFile(4)
        m.allocate(0x100, 400.0, 0.0)
        with pytest.raises(RuntimeError, match="merge, not re-allocate"):
            m.allocate(0x100, 500.0, 10.0)

    def test_overflow_rejected(self):
        m = MSHRFile(2)
        m.allocate(0x000, 400.0, 0.0)
        m.allocate(0x080, 410.0, 1.0)
        with pytest.raises(RuntimeError, match="stall on entry_free_at"):
            m.allocate(0x100, 420.0, 2.0)

    def test_line_reusable_after_retire(self):
        # The same line can miss again after its fill retired (cache
        # eviction brought it back): this is a fresh primary miss.
        m = MSHRFile(1)
        m.allocate(0x100, 400.0, 0.0)
        m.allocate(0x100, 900.0, 500.0)
        assert m.primary_misses == 2

    def test_needs_at_least_one_entry(self):
        with pytest.raises(ValueError, match="at least one entry"):
            MSHRFile(0)
        with pytest.raises(ValueError, match="at least one entry"):
            MSHRFile(-4)


class TestEntryFreeAt:
    def test_free_file_admits_immediately(self):
        m = MSHRFile(2)
        assert m.entry_free_at(5.0) == 5.0
        m.allocate(0x000, 400.0, 5.0)
        assert m.entry_free_at(6.0) == 6.0

    def test_full_file_frees_at_earliest_fill(self):
        m = MSHRFile(2)
        m.allocate(0x000, 450.0, 0.0)
        m.allocate(0x080, 400.0, 1.0)
        assert m.entry_free_at(2.0) == 400.0

    def test_retirement_frees_the_file(self):
        m = MSHRFile(1)
        m.allocate(0x000, 400.0, 0.0)
        assert m.entry_free_at(100.0) == 400.0
        assert m.entry_free_at(400.0) == 400.0
        assert m.entry_free_at(401.0) == 401.0


class TestStats:
    def test_peak_outstanding_tracks_high_water_mark(self):
        m = MSHRFile(4)
        m.allocate(0x000, 400.0, 0.0)
        m.allocate(0x080, 400.0, 1.0)
        m.allocate(0x100, 400.0, 2.0)
        assert m.peak_outstanding == 3
        # Retiring everything does not lower the peak.
        m.outstanding(0x000, 500.0)
        m.allocate(0x180, 900.0, 500.0)
        assert m.peak_outstanding == 3

    def test_stats_payload_shape(self):
        m = MSHRFile(8)
        m.allocate(0x000, 400.0, 0.0)
        m.secondary_merges += 1
        s = m.stats()
        assert s == {
            "entries": 8,
            "primary_misses": 1,
            "secondary_merges": 1,
            "full_stalls": 0,
            "full_stall_cycles": 0.0,
            "peak_outstanding": 1,
        }
