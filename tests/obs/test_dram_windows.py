"""Hook-level conservation of DRAM observer windows.

The observability layer's DRAM story rests on one contract: the
``observer(busy_start, busy_end, nbytes)`` windows a channel reports
partition its bus-busy time exactly -- summing them reproduces the
channel's own ``busy_cycles`` and byte counters.  Checked directly on
:class:`DRAMChannel` / :class:`DRAMSystem`, then end-to-end through
``simulate_chip`` under both shared and partitioned DRAM.

Bandwidths here are powers of two, so every ``nbytes / bytes_per_cycle``
service time is a dyadic rational and the sums are exact -- equality,
not tolerance (the same discipline as the cycle-conservation tests).
"""

import math

import pytest

from repro.chip import ChipConfig, simulate_chip
from repro.compiler import compile_kernel
from repro.core import partitioned_baseline
from repro.kernels import get_benchmark
from repro.memory.dram import DRAMChannel, DRAMSystem
from repro.obs import ChipCollector


class TestChannelHook:
    def test_windows_sum_to_busy_cycles_and_bytes(self):
        windows = []
        ch = DRAMChannel(bytes_per_cycle=8.0, latency=400,
                         observer=lambda s, e, b: windows.append((s, e, b)))
        for now, nbytes in ((0.0, 128), (1.0, 32), (500.0, 64), (500.0, 32)):
            ch.request(now, nbytes)
        assert len(windows) == ch.accesses == 4
        assert math.fsum(e - s for s, e, _ in windows) == ch.busy_cycles
        assert sum(b for _, _, b in windows) == ch.bytes_transferred
        # Back-to-back reservation means busy time is exactly the byte
        # count over the bandwidth.
        assert ch.busy_cycles == ch.bytes_transferred / ch.bytes_per_cycle

    def test_windows_never_overlap(self):
        windows = []
        ch = DRAMChannel(bytes_per_cycle=8.0,
                         observer=lambda s, e, b: windows.append((s, e)))
        for now in (0.0, 0.0, 0.0, 100.0):
            ch.request(now, 64)
        for (s0, e0), (s1, e1) in zip(windows, windows[1:]):
            assert e0 <= s1


class TestSystemHook:
    def test_per_channel_windows_match_arbiter_accounting(self):
        seen = {}
        system = DRAMSystem(
            bytes_per_cycle=64.0,
            channels=4,
            channel_observer=lambda c, s, e, b: seen.setdefault(c, []).append(
                (s, e, b)
            ),
        )
        ports = [system.port(i) for i in range(2)]
        for i in range(16):
            ports[i % 2].request(float(i), 32)
        assert sorted(seen) == list(range(4))
        for c, windows in seen.items():
            assert math.fsum(e - s for s, e, _ in windows) == system.channel_busy[c]
            assert sum(b for _, _, b in windows) == system.channel_bytes[c]
            assert len(windows) == system.channel_accesses[c]
        assert sum(system.channel_bytes) == system.bytes_transferred

    def test_hook_optional(self):
        system = DRAMSystem(bytes_per_cycle=64.0, channels=2)
        system.port(0).request(0.0, 32)
        # 64 B/cycle striped over 2 channels serves 32 bytes in 1 cycle.
        assert system.channel_busy[0] == 1.0


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def kernel(self):
        return compile_kernel(get_benchmark("vectoradd").build("tiny"))

    @pytest.mark.parametrize("partitioned", (False, True), ids=("shared", "partitioned"))
    def test_collector_windows_conserve_through_chip(self, kernel, partitioned):
        cfg = ChipConfig(num_sms=2, dram_partitioned=partitioned)
        cc = ChipCollector.for_chip(cfg)
        cr = simulate_chip(kernel, partitioned_baseline(), cfg, chip_collector=cc)
        assert sum(cc.channel_bytes) == sum(r.dram_bytes for r in cr.per_sm)
        assert sum(cc.channel_accesses) == sum(r.dram_accesses for r in cr.per_sm)
        if partitioned:
            # Each private slice reserves back to back: busy time is
            # exactly bytes over the per-SM bandwidth slice.
            for c in range(2):
                assert cc.channel_busy[c] == (
                    cc.channel_bytes[c] / cfg.sm_bandwidth_slice
                )
        else:
            # Shared channels stripe the total bandwidth; busy cycles
            # follow from the bytes each channel served.
            per_ch = cfg.dram_bytes_per_cycle / cfg.dram_channels
            for c in range(cfg.dram_channels):
                assert cc.channel_busy[c] == cc.channel_bytes[c] / per_ch
