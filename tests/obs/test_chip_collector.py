"""Chip-scope observability: conservation, neutrality, merged outputs."""

import math

import pytest

from repro.chip import ChipConfig, simulate_chip
from repro.compiler import compile_kernel
from repro.core import partitioned_baseline
from repro.kernels import get_benchmark
from repro.obs import (
    CHIPMETRICS_SCHEMA,
    STALL_CAUSES,
    TRACE_CHIP_SCHEMA,
    ChipCollector,
    Collector,
    validate_chipmetrics,
    validate_trace,
)

# Barriers + shared memory (matrixmul) and pure streaming (vectoradd)
# exercise both CTA-retire paths; 2 and 3 SMs catch per-SM indexing
# mistakes a symmetric 2-SM run would mask.
KERNELS = ("vectoradd", "matrixmul")
SM_COUNTS = (2, 3)


def _cfg(num_sms, partitioned):
    return ChipConfig(num_sms=num_sms, dram_partitioned=partitioned)


@pytest.fixture(scope="module")
def compiled():
    return {name: compile_kernel(get_benchmark(name).build("tiny")) for name in KERNELS}


@pytest.fixture(scope="module")
def partition():
    return partitioned_baseline()


class TestChipConservation:
    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("partitioned", (False, True), ids=("shared", "partitioned"))
    @pytest.mark.parametrize("num_sms", SM_COUNTS)
    def test_chip_identity_exact(self, compiled, partition, kernel,
                                 partitioned, num_sms):
        cfg = _cfg(num_sms, partitioned)
        cc = ChipCollector.for_chip(cfg)
        cr = simulate_chip(compiled[kernel], partition, cfg, chip_collector=cc)
        assert cc.conservation_errors() == []
        # The chip identity, re-derived with exact float equality:
        # sum_sm(issue + stalls) == sum_sm(warps) x chip_cycles.
        attributed = math.fsum(
            [float(cc.issue_cycles)]
            + [
                math.fsum(ws.stalls.values())
                for col in cc.collectors
                for ws in col.warps.values()
            ]
        )
        assert attributed == cc.warps * cr.cycles

    def test_requires_finish(self):
        cc = ChipCollector(2, 8)
        assert cc.conservation_errors() == ["finish() was never called"]

    def test_per_sm_errors_are_prefixed(self, compiled, partition):
        cfg = _cfg(2, False)
        cc = ChipCollector.for_chip(cfg)
        simulate_chip(compiled["vectoradd"], partition, cfg, chip_collector=cc)
        # Corrupt one SM's attribution; the roll-up must localise it.
        ws = next(iter(cc.collectors[1].warps.values()))
        ws.stalls["raw"] = ws.stalls.get("raw", 0.0) + 1.0
        errors = cc.conservation_errors()
        assert any(e.startswith("sm1: ") for e in errors)
        assert any(e.startswith("chip: ") for e in errors)


class TestChipNeutrality:
    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("partitioned", (False, True), ids=("shared", "partitioned"))
    def test_cycle_counts_bit_identical(self, compiled, partition, kernel,
                                        partitioned):
        cfg = _cfg(2, partitioned)
        plain = simulate_chip(compiled[kernel], partition, cfg)
        cc = ChipCollector.for_chip(cfg, metrics_window=500, trace=True)
        inst = simulate_chip(compiled[kernel], partition, cfg, chip_collector=cc)
        assert inst.cycles == plain.cycles
        assert [r.cycles for r in inst.per_sm] == [r.cycles for r in plain.per_sm]
        assert [r.instructions for r in inst.per_sm] == [
            r.instructions for r in plain.per_sm
        ]
        assert [r.dram_bytes for r in inst.per_sm] == [
            r.dram_bytes for r in plain.per_sm
        ]
        assert inst.ctas_per_sm == plain.ctas_per_sm


class TestShapeValidation:
    def test_wrong_sm_count_rejected(self, compiled, partition):
        cc = ChipCollector(3, 8)
        with pytest.raises(ValueError, match="3 SMs"):
            simulate_chip(compiled["vectoradd"], partition, _cfg(2, False),
                          chip_collector=cc)

    def test_wrong_channel_count_rejected(self, compiled, partition):
        cc = ChipCollector(2, 4)
        with pytest.raises(ValueError, match="channels"):
            simulate_chip(compiled["vectoradd"], partition, _cfg(2, False),
                          chip_collector=cc)

    def test_collectors_and_chip_collector_exclusive(self, compiled, partition):
        cfg = _cfg(2, False)
        cc = ChipCollector.for_chip(cfg)
        with pytest.raises(ValueError, match="not both"):
            simulate_chip(compiled["vectoradd"], partition, cfg,
                          collectors=[Collector(), Collector()],
                          chip_collector=cc)

    def test_for_chip_partitioned_uses_sm_channels(self):
        cc = ChipCollector.for_chip(_cfg(4, True))
        assert cc.num_channels == 4
        assert cc.dram_partitioned


class TestDispatcherTap:
    @pytest.mark.parametrize("partitioned", (False, True), ids=("shared", "partitioned"))
    def test_lifetimes_cover_grid(self, compiled, partition, partitioned):
        cfg = _cfg(2, partitioned)
        cc = ChipCollector.for_chip(cfg)
        cr = simulate_chip(compiled["matrixmul"], partition, cfg, chip_collector=cc)
        summary = cc.dispatcher_summary()
        grid = len(compiled["matrixmul"].ctas)
        assert summary["ctas_dispatched"] == grid
        assert summary["ctas_retired"] == grid
        assert summary["ctas_per_sm"] == cr.ctas_per_sm
        assert summary["max_lifetime_cycles"] <= cr.cycles
        assert 0.0 < summary["mean_lifetime_cycles"] <= summary["max_lifetime_cycles"]
        for rec in cc.cta_lifetimes.values():
            assert rec["retire"] is not None
            assert rec["dispatch"] <= rec["retire"]

    def test_dispatch_matches_per_sm_launches(self, compiled, partition):
        cfg = _cfg(3, False)
        cc = ChipCollector.for_chip(cfg)
        simulate_chip(compiled["vectoradd"], partition, cfg, chip_collector=cc)
        per_sm = [0] * 3
        for rec in cc.cta_lifetimes.values():
            per_sm[rec["sm"]] += 1
        assert per_sm == [col.ctas_launched for col in cc.collectors]


class TestChipMetrics:
    def test_payload_valid_and_totals_conserve(self, compiled, partition):
        cfg = _cfg(2, False)
        cc = ChipCollector.for_chip(cfg, metrics_window=500)
        cr = simulate_chip(compiled["matrixmul"], partition, cfg, chip_collector=cc)
        payload = cc.chipmetrics_payload()
        assert payload["schema"] == CHIPMETRICS_SCHEMA
        assert validate_chipmetrics(payload) == []
        samples = payload["samples"]
        assert samples[-1]["end"] == cr.cycles
        # Windowed instruction counts sum to the run totals, per SM and
        # chip-wide (add_instruction counts at issue time, always inside
        # [0, total)).
        assert sum(s["instructions"] for s in samples) == sum(
            r.instructions for r in cr.per_sm
        )
        # Windowed channel bytes sum to the arbiter's per-channel bytes.
        for c in range(payload["dram_channels"]):
            assert math.fsum(
                s["channel_bytes"][c] for s in samples
            ) == pytest.approx(cc.channel_bytes[c])
        assert math.fsum(s["dram_bytes"] for s in samples) == pytest.approx(
            sum(r.dram_bytes for r in cr.per_sm)
        )

    def test_occupancy_and_queue_series(self, compiled, partition):
        cfg = _cfg(2, False)
        cc = ChipCollector.for_chip(cfg, metrics_window=500)
        simulate_chip(compiled["matrixmul"], partition, cfg, chip_collector=cc)
        samples = cc.chipmetrics_payload()["samples"]
        grid = len(compiled["matrixmul"].ctas)
        # The queue starts at the undispatched grid and drains to zero.
        assert samples[0]["queue_depth"] <= grid
        assert samples[-1]["queue_depth"] == 0.0
        assert all(
            s["queue_depth"] >= s_next["queue_depth"]
            for s, s_next in zip(samples, samples[1:])
        )
        # Somebody was resident at some point, nobody after the end.
        assert max(s["resident_ctas"] for s in samples) > 0
        assert all(len(s["per_sm_resident_ctas"]) == 2 for s in samples)

    def test_disabled_without_window(self, compiled, partition):
        cfg = _cfg(2, False)
        cc = ChipCollector.for_chip(cfg)
        simulate_chip(compiled["vectoradd"], partition, cfg, chip_collector=cc)
        assert cc.chipmetrics_payload() is None

    def test_validate_rejects_malformed(self):
        assert validate_chipmetrics([]) == ["payload must be a JSON object"]
        bad = {
            "schema": CHIPMETRICS_SCHEMA,
            "window": 500,
            "num_sms": 2,
            "dram_channels": 8,
            "samples": [{"index": 0}],
        }
        problems = validate_chipmetrics(bad)
        assert any("per_sm_ipc" in p for p in problems)
        assert any("channel_utilisation" in p for p in problems)


class TestMergedTrace:
    @pytest.mark.parametrize("partitioned", (False, True), ids=("shared", "partitioned"))
    def test_single_payload_covers_every_track(self, compiled, partition,
                                               partitioned):
        cfg = _cfg(2, partitioned)
        cc = ChipCollector.for_chip(cfg, trace=True)
        simulate_chip(compiled["matrixmul"], partition, cfg, chip_collector=cc)
        payload = cc.trace_payload()
        assert payload["otherData"]["schema"] == TRACE_CHIP_SCHEMA
        assert validate_trace(payload) == []
        events = payload["traceEvents"]
        # Every SM has warp events; DRAM channels and dispatcher have
        # their own processes above the SM pids.
        warp_pids = {e["pid"] for e in events if e.get("cat") == "issue"}
        assert warp_pids == {0, 1}
        dram = [e for e in events if e["pid"] == cc.pid_channels and e["ph"] == "X"]
        assert dram
        channels_seen = {e["tid"] for e in dram}
        if partitioned:
            assert channels_seen == {0, 1}
        else:
            assert channels_seen <= set(range(8)) and channels_seen
        gantt = [e for e in events if e["pid"] == cc.pid_dispatcher and e["ph"] == "X"]
        assert len(gantt) == len(compiled["matrixmul"].ctas)
        assert all(e["name"].startswith("cta") for e in gantt)

    def test_bounded_buffer_preserved(self, compiled, partition):
        cfg = _cfg(2, False)
        budget = 300
        cc = ChipCollector.for_chip(cfg, trace=True, max_trace_events=budget)
        simulate_chip(compiled["matrixmul"], partition, cfg, chip_collector=cc)
        payload = cc.trace_payload()
        assert payload["otherData"]["droppedEvents"] > 0
        # The merged payload never exceeds the chip-wide budget (the
        # per-SM process_name metadata we synthesise replaces events the
        # merge dropped, so it cannot push past the bound).
        assert len(payload["traceEvents"]) <= budget

    def test_disabled_without_trace(self, compiled, partition):
        cfg = _cfg(2, False)
        cc = ChipCollector.for_chip(cfg)
        simulate_chip(compiled["vectoradd"], partition, cfg, chip_collector=cc)
        assert cc.trace_payload() is None


class TestChipReport:
    def test_report_shape(self, compiled, partition):
        cfg = _cfg(2, False)
        cc = ChipCollector.for_chip(cfg)
        cr = simulate_chip(compiled["matrixmul"], partition, cfg, chip_collector=cc)
        report = cc.report()
        assert report["schema"] == "repro.obs.chip_profile/1"
        assert report["num_sms"] == 2
        assert report["total_cycles"] == cr.cycles
        assert report["conservation_ok"] is True
        assert set(report["stall_cycles"]) == set(STALL_CAUSES)
        assert len(report["per_sm"]) == 2
        assert report["issue_cycles"] == sum(r.instructions for r in cr.per_sm)
        assert len(report["channels"]["utilisation"]) == 8
        assert all(0.0 <= u <= 1.0 for u in report["channels"]["utilisation"])

    def test_runner_passthrough_and_memo_storage(self, tmp_path, compiled):
        from repro.experiments.runner import Runner

        rn = Runner("tiny")
        cfg = _cfg(2, False)
        cc = ChipCollector.for_chip(cfg)
        cr = rn.simulate_chip("vectoradd", partitioned_baseline(), chip=cfg,
                              chip_collector=cc)
        assert cc.total_cycles == cr.cycles
        assert cc.warps > 0
        # The instrumented result was memoised; an uninstrumented call
        # reuses it (neutrality makes the stored result identical).
        again = rn.simulate_chip("vectoradd", partitioned_baseline(), chip=cfg)
        assert again is cr
