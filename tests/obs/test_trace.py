"""Chrome trace-event buffer, validation, and file round trip."""

import json

from repro.compiler import compile_kernel
from repro.core import partitioned_baseline
from repro.kernels import get_benchmark
from repro.obs import Collector, TraceBuffer, validate_trace, write_trace
from repro.obs.trace import PID_DRAM, PID_WARPS, TRACE_SCHEMA
from repro.sm.simulator import simulate


class TestTraceBuffer:
    def test_bounded_with_dropped_count(self):
        buf = TraceBuffer(max_events=3)
        for i in range(5):
            buf.slice(0, 0, f"ev{i}", "issue", float(i), 1.0)
        payload = buf.to_payload()
        assert len(payload["traceEvents"]) == 3
        assert payload["otherData"]["droppedEvents"] == 2

    def test_payload_shape(self):
        buf = TraceBuffer()
        buf.process_name(PID_WARPS, "SM warps")
        buf.slice(PID_WARPS, 7, "ALU", "issue", 10.0, 2.0)
        buf.instant(PID_WARPS, 7, "complete", "warp", 12.0)
        payload = buf.to_payload()
        assert payload["displayTimeUnit"] == "ms"
        assert payload["otherData"]["schema"] == TRACE_SCHEMA
        assert validate_trace(payload) == []

    def test_validate_catches_malformed_events(self):
        assert validate_trace({}) == ["traceEvents must be a JSON array"]
        bad = {
            "traceEvents": [
                {"ph": "Z", "name": "x", "pid": 0, "tid": 0, "ts": 0},
                {"ph": "X", "name": "", "pid": 0, "tid": 0, "ts": 1, "dur": 1},
                {"ph": "X", "name": "y", "pid": 0, "tid": 0, "ts": -1, "dur": -2},
                "not-an-object",
            ]
        }
        problems = validate_trace(bad)
        assert len(problems) >= 4

    def test_file_round_trip(self, tmp_path):
        buf = TraceBuffer()
        buf.slice(PID_DRAM, 0, "128B", "dram", 0.0, 16.0)
        path = tmp_path / "t.json"
        write_trace(buf, path)
        back = json.loads(path.read_text())
        assert validate_trace(back) == []
        assert back["traceEvents"] == buf.to_payload()["traceEvents"]


class TestSimulatorTrace:
    def test_instrumented_run_emits_valid_trace(self, tmp_path):
        ck = compile_kernel(get_benchmark("matrixmul").build("tiny"))
        col = Collector(trace=True)
        result = simulate(ck, partitioned_baseline(), collector=col)
        payload = col.trace_payload()
        assert validate_trace(payload) == []
        events = payload["traceEvents"]
        issues = [e for e in events if e.get("cat") == "issue"]
        assert len(issues) == result.instructions
        assert {e["cat"] for e in events if e["ph"] == "X"} >= {"issue", "cta"}
        # Events never extend past the end of the run.
        assert all(
            e["ts"] + e.get("dur", 0.0) <= result.cycles
            for e in events
            if e["ph"] == "X"
        )
        path = tmp_path / "sim.trace.json"
        write_trace(payload, path)
        assert validate_trace(json.loads(path.read_text())) == []
