"""Cross-run diff engine: zero-delta self-compare, conservation
re-checks, tiered alignment, CTA slowdowns, trace pivoting."""

import pytest

from repro.compiler import compile_kernel
from repro.core import partitioned_baseline
from repro.experiments.runner import Runner
from repro.kernels import get_benchmark
from repro.obs import Collector
from repro.obs.compare import (
    DIFF_SCHEMA,
    TRACE_PIVOT_SCHEMA,
    build_diff,
    conservation_violated,
    cta_slowdowns,
    diff_results,
    format_diff,
    payload_kind,
    pivot_traces,
    recheck_conservation,
    validate_diff,
)
from repro.obs.trace import validate_trace
from repro.sm import SMConfig
from repro.sm.simulator import simulate

BENCH = ("vectoradd", "scalarprod")


@pytest.fixture(scope="module")
def profile_payload():
    col = Collector()
    ck = compile_kernel(get_benchmark("vectoradd").build("tiny"))
    simulate(ck, partitioned_baseline(), collector=col)
    return col.report()


@pytest.fixture(scope="module")
def metrics_payloads():
    """Two run-metrics payloads: blocking vs non-blocking memory."""
    out = []
    for config in (SMConfig(), SMConfig(mshr_entries=4)):
        rn = Runner("tiny", config)
        for name in BENCH:
            rn.baseline(name)
        out.append(rn.sim_metrics())
    return out


class TestDiffResults:
    def test_kernel_mismatch_rejected(self):
        rn = Runner("tiny")
        a = rn.baseline("vectoradd")
        b = rn.baseline("scalarprod")
        with pytest.raises(ValueError, match="different kernels"):
            diff_results(a, b)

    def test_self_compare_is_exactly_zero(self):
        r = Runner("tiny").baseline("vectoradd")
        d = diff_results(r, r)
        assert d["cycles"]["delta"] == 0.0
        assert d["cycles"]["speedup"] == 1.0
        assert d["instructions"]["delta"] == 0
        assert d["dram_bytes"]["delta"] == 0

    def test_speedup_matches_speedup_over(self):
        rn = Runner("tiny")
        base = rn.baseline("vectoradd")
        uni, _ = rn.unified("vectoradd", total_kb=384)
        d = diff_results(base, uni)
        assert d["cycles"]["speedup"] == uni.speedup_over(base)
        assert d["cycles"]["delta"] == uni.cycles - base.cycles


class TestConservationRecheck:
    def test_real_profile_passes_exactly(self, profile_payload):
        check = recheck_conservation(profile_payload)
        assert check == {"checked": 1, "ok": True, "violations": []}

    def test_tampered_profile_fails(self, profile_payload):
        bad = dict(profile_payload)
        bad["issue_cycles"] = profile_payload["issue_cycles"] + 1.0
        check = recheck_conservation(bad)
        assert not check["ok"]
        assert "attributed" in check["violations"][0]

    def test_run_metrics_have_nothing_to_check(self, metrics_payloads):
        check = recheck_conservation(metrics_payloads[0])
        assert check["checked"] == 0
        assert check["ok"]


class TestProfileDiff:
    def test_self_compare_zero_and_valid(self, profile_payload):
        d = build_diff(profile_payload, profile_payload,
                       label_a="x", label_b="y")
        assert d["schema"] == DIFF_SCHEMA
        assert d["kind"] == "profile"
        assert not validate_diff(d)
        assert d["cycles"]["delta"] == 0.0
        assert d["conservation"]["a"]["ok"]
        assert d["conservation"]["b"]["ok"]
        assert all(row["delta"] == 0.0 for row in d["attribution"])
        assert not conservation_violated(d)
        text = format_diff(d)
        assert "speedup 1.000x" in text
        assert "re-verified exactly" in text

    def test_tampered_side_flags_violation(self, profile_payload):
        bad = dict(profile_payload)
        bad["issue_cycles"] = profile_payload["issue_cycles"] + 1.0
        d = build_diff(profile_payload, bad)
        assert not d["conservation"]["a"]["violations"]
        assert d["conservation"]["b"]["violations"]
        assert conservation_violated(d)
        assert "VIOLATED" in format_diff(d)


class TestRunMetricsDiff:
    def test_self_compare_aligns_everything_at_strictest_tier(
        self, metrics_payloads
    ):
        m = metrics_payloads[0]
        d = build_diff(m, m)
        sims = d["simulations"]
        assert sims["matched"] == len(m["simulations"])
        assert sims["alignment"] == "kernel+regs+threads+partition+config"
        assert not sims["only_a"] and not sims["only_b"]
        assert d["cycles"]["delta"] == 0.0
        assert all(r["cycles"]["delta"] == 0.0 for r in sims["per_sim"])

    def test_cross_config_falls_back_a_tier_and_attributes(
        self, metrics_payloads
    ):
        blocking, nonblocking = metrics_payloads
        d = build_diff(blocking, nonblocking,
                       label_a="blocking", label_b="mshr4")
        sims = d["simulations"]
        # Different SMConfigs: the config-digest tier matches nothing,
        # the partition tier pairs every simulation.
        assert sims["alignment"] == "kernel+regs+threads+partition"
        assert sims["matched"] == len(blocking["simulations"])
        assert not validate_diff(d)
        assert "matched" in format_diff(d)

    def test_disjoint_runs_report_only_sides(self, metrics_payloads):
        m = metrics_payloads[0]
        other = Runner("tiny")
        other.baseline("matrixmul")
        d = build_diff(m, other.sim_metrics())
        sims = d["simulations"]
        assert sims["matched"] == 0
        assert len(sims["only_a"]) == len(BENCH)
        assert len(sims["only_b"]) == 1


class TestEngineProvenance:
    def test_same_engine_not_flagged(self, metrics_payloads):
        m = metrics_payloads[0]
        d = build_diff(m, m)
        assert d["engines"] == {
            "a": ["columnar"], "b": ["columnar"], "mixed": False,
        }
        assert "engine-mixed" not in format_diff(d)

    def test_mixed_engines_flagged_in_header(self, metrics_payloads):
        event_rn = Runner("tiny", SMConfig(engine="event"))
        for name in BENCH:
            event_rn.baseline(name)
        d = build_diff(metrics_payloads[0], event_rn.sim_metrics(),
                       label_a="columnar-run", label_b="event-run")
        assert d["engines"]["mixed"] is True
        header = format_diff(d).splitlines()[1]
        assert "engines: A = columnar  vs  B = event" in header
        assert "[engine-mixed diff]" in header
        # Engines are bit-identical by contract, so the flagged diff
        # still shows zero cycle delta.
        assert d["cycles"]["delta"] == 0.0
        assert not validate_diff(d)

    def test_manifest_diff_surfaces_resolution(self):
        from repro.obs.manifest import build_run_manifest

        rn = Runner("tiny")
        for name in BENCH:
            rn.baseline(name)
        mixed = build_run_manifest(
            "repro x", "tiny", rn.config, engines=rn.engine_summary()
        )
        pure = build_run_manifest(
            "repro y", "tiny", rn.config,
            engines={"configured": "event",
                     "resolved": {"event": 2}, "mixed": False},
        )
        d = build_diff(mixed, pure)
        assert d["engines"]["mixed"] is True
        text = format_diff(d)
        assert "engine-mixed diff" in text
        assert "ran" in text  # resolved counts rendered in the header
        same = build_diff(mixed, mixed)
        assert same["engines"]["mixed"] is False


class TestKindDetection:
    def test_known_kinds(self, profile_payload, metrics_payloads):
        assert payload_kind(profile_payload) == "profile"
        assert payload_kind(metrics_payloads[0]) == "run_metrics"
        assert payload_kind({"traceEvents": []}) == "trace"
        assert payload_kind({"chip_version": 1}) == "chip_result"

    def test_unknown_payload_rejected(self):
        with pytest.raises(ValueError, match="unrecognised"):
            payload_kind({"schema": "something/9"})

    def test_mixed_kinds_rejected(self, profile_payload, metrics_payloads):
        with pytest.raises(ValueError, match="cannot diff"):
            build_diff(profile_payload, metrics_payloads[0])


def _cta_trace(durations: dict[str, float]) -> dict:
    events = [
        {"ph": "X", "cat": "cta", "name": name, "pid": 1, "tid": 0,
         "ts": 0.0, "dur": dur}
        for name, dur in durations.items()
    ]
    return {"traceEvents": events, "otherData": {"schema": "repro.obs.trace/2",
                                                 "droppedEvents": 0}}


class TestCtaSlowdowns:
    def test_matches_by_name_and_ranks_by_delta(self):
        a = _cta_trace({"cta0": 100.0, "cta1": 200.0, "cta2": 50.0})
        b = _cta_trace({"cta0": 150.0, "cta1": 200.0, "cta3": 10.0})
        out = cta_slowdowns(a, b)
        assert out["matched"] == 2
        assert out["only_a"] == ["cta2"]
        assert out["only_b"] == ["cta3"]
        top = out["slowdowns"][0]
        assert top["cta"] == "cta0"
        assert top["slowdown"] == 1.5
        assert top["cycles"]["delta"] == 50.0

    def test_trace_kind_diff_embeds_slowdowns(self):
        a = _cta_trace({"cta0": 100.0})
        b = _cta_trace({"cta0": 120.0})
        d = build_diff(a, b)
        assert d["kind"] == "trace"
        assert d["cycles"]["delta"] == 20.0  # makespan delta
        assert d["ctas"]["slowdowns"][0]["slowdown"] == 1.2
        assert not validate_diff(d)
        assert "slowdowns" in format_diff(d) or "1.200x" in format_diff(d)


class TestPivotTraces:
    def test_offsets_pids_and_prefixes_labels(self):
        a = {"traceEvents": [
            {"ph": "M", "pid": 0, "tid": 0, "name": "process_name",
             "args": {"name": "warps"}},
            {"ph": "X", "pid": 0, "tid": 0, "name": "w0", "cat": "warp",
             "ts": 0.0, "dur": 5.0},
        ], "otherData": {"schema": "repro.obs.trace/1", "droppedEvents": 0}}
        pivot = pivot_traces(a, a, label_a="old", label_b="new")
        assert pivot["otherData"]["schema"] == TRACE_PIVOT_SCHEMA
        pids = {e["pid"] for e in pivot["traceEvents"]}
        assert pids == {0, 1}
        names = {e["args"]["name"] for e in pivot["traceEvents"]
                 if e.get("name") == "process_name"}
        assert names == {"old: warps", "new: warps"}
        assert not validate_trace(pivot)


class TestValidateDiff:
    def test_broken_delta_arithmetic_caught(self, profile_payload):
        d = build_diff(profile_payload, profile_payload)
        d["cycles"]["delta"] = 123.0
        problems = validate_diff(d)
        assert any("delta" in p for p in problems)

    def test_wrong_schema_and_kind_caught(self):
        problems = validate_diff({"schema": "nope", "kind": "nope"})
        assert any("schema" in p for p in problems)
        assert any("kind" in p for p in problems)
