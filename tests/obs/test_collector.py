"""Stall attribution: conservation, neutrality, and cause semantics."""

import math

import pytest

from repro.compiler import compile_kernel
from repro.core import fermi_like, partitioned_baseline, partitioned_design
from repro.kernels import get_benchmark
from repro.obs import NULL_COLLECTOR, STALL_CAUSES, Collector
from repro.obs.collector import (
    CAUSE_BARRIER,
    CAUSE_DESCHEDULE,
    CAUSE_MEMORY,
    CAUSE_NOT_RESIDENT,
)
from repro.sm import SMConfig
from repro.sm.simulator import simulate

# >= 3 kernels x 3 partitions, spanning barriers (matrixmul, needle),
# shared memory (needle), streaming (vectoradd), and irregular access
# (bfs); the no-cache partition forces every global access to DRAM.
KERNELS = ("vectoradd", "matrixmul", "needle", "bfs")
PARTITIONS = {
    "baseline": partitioned_baseline(),
    "fermi0": fermi_like(0),
    "nocache": partitioned_design(256, 128, 0),
}


def _compiled(name):
    return compile_kernel(get_benchmark(name).build("tiny"))


@pytest.fixture(scope="module")
def compiled():
    return {name: _compiled(name) for name in KERNELS}


class TestConservation:
    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("pname", sorted(PARTITIONS))
    def test_every_cycle_attributed_exactly(self, compiled, kernel, pname):
        col = Collector()
        result = simulate(compiled[kernel], PARTITIONS[pname], collector=col)
        assert col.conservation_errors() == []
        # The aggregate identity, checked with exact float equality:
        # issue + stalls == warps * total_cycles.
        total = col.issue_cycles + math.fsum(
            math.fsum(ws.stalls.values()) for ws in col.warps.values()
        )
        assert total == len(col.warps) * result.cycles

    def test_issue_cycles_equal_instruction_count(self, compiled):
        col = Collector()
        result = simulate(compiled["matrixmul"], PARTITIONS["baseline"], collector=col)
        assert col.issue_cycles == result.instructions

    def test_conservation_requires_finish(self):
        assert Collector().conservation_errors() == ["finish() was never called"]

    def test_deschedule_config_conserves_and_charges(self, compiled):
        cfg = SMConfig(deschedule_latency=30, deschedule_threshold=40)
        col = Collector()
        simulate(compiled["matrixmul"], PARTITIONS["baseline"], cfg, collector=col)
        assert col.conservation_errors() == []
        assert col.stall_totals()[CAUSE_DESCHEDULE] > 0


class TestNeutrality:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_instrumentation_never_changes_timing(self, compiled, kernel):
        plain = simulate(compiled[kernel], PARTITIONS["baseline"])
        col = Collector(metrics_window=500, trace=True)
        instrumented = simulate(
            compiled[kernel], PARTITIONS["baseline"], collector=col
        )
        assert instrumented.cycles == plain.cycles
        assert instrumented.instructions == plain.instructions
        assert instrumented.dram_bytes == plain.dram_bytes

    def test_null_collector_is_uninstrumented(self, compiled):
        result = simulate(
            compiled["vectoradd"], PARTITIONS["baseline"], collector=NULL_COLLECTOR
        )
        assert result.stall_cycles == {}

    def test_active_collector_fills_result_stalls(self, compiled):
        result = simulate(
            compiled["vectoradd"], PARTITIONS["baseline"], collector=Collector()
        )
        assert set(result.stall_cycles) == set(STALL_CAUSES)
        assert all(v >= 0.0 for v in result.stall_cycles.values())


class TestCauseSemantics:
    def test_barrier_kernel_charges_barrier(self, compiled):
        col = Collector()
        simulate(compiled["matrixmul"], PARTITIONS["baseline"], collector=col)
        assert col.stall_totals()[CAUSE_BARRIER] > 0

    def test_no_cache_charges_memory(self, compiled):
        col = Collector()
        simulate(compiled["vectoradd"], PARTITIONS["nocache"], collector=col)
        assert col.stall_totals()[CAUSE_MEMORY] > 0

    def test_staggered_residency_charged_not_resident(self, compiled):
        # bfs at tiny scale launches more CTAs than fit at once, so
        # later warps spend their early cycles not resident.
        col = Collector()
        simulate(compiled["bfs"], PARTITIONS["baseline"], collector=col)
        assert col.stall_totals()[CAUSE_NOT_RESIDENT] > 0

    def test_report_shape(self, compiled):
        col = Collector()
        result = simulate(compiled["needle"], PARTITIONS["baseline"], collector=col)
        report = col.report()
        assert report["schema"] == "repro.obs.profile/1"
        assert report["total_cycles"] == result.cycles
        assert report["conservation_ok"] is True
        assert set(report["stall_cycles"]) == set(STALL_CAUSES)


class TestIntervalMetrics:
    def test_window_totals_match_run_totals(self, compiled):
        col = Collector(metrics_window=500)
        result = simulate(compiled["matrixmul"], PARTITIONS["baseline"], collector=col)
        payload = col.metrics_payload()
        samples = payload["samples"]
        assert payload["window"] == 500
        assert samples[-1]["end"] >= result.cycles
        assert sum(s["instructions"] for s in samples) == result.instructions
        accesses = sum(s["cache_accesses"] for s in samples)
        assert accesses == result.cache_stats.accesses
        dram_bytes = sum(s["dram_bytes"] for s in samples)
        assert dram_bytes == pytest.approx(result.dram_bytes)

    def test_occupancy_and_utilisation_bounded(self, compiled):
        col = Collector(metrics_window=250)
        result = simulate(compiled["bfs"], PARTITIONS["baseline"], collector=col)
        for s in col.metrics_payload()["samples"]:
            assert 0.0 <= s["dram_utilisation"] <= 1.0
            assert 0.0 <= s["occupancy"] <= result.resident_threads / 32
            assert 0.0 <= s["cache_hit_rate"] <= 1.0

    def test_disabled_without_window(self, compiled):
        col = Collector()
        simulate(compiled["vectoradd"], PARTITIONS["baseline"], collector=col)
        assert col.metrics_payload() is None
