"""Replay-path observability: the columnar engine's instrumented contract.

PR 8's replayer earned its speed by being bit-identical to the event
engine *uninstrumented*; this sweep pins the instrumented half of the
contract.  With a :class:`~repro.obs.Collector` (or
:class:`~repro.obs.ChipCollector`) attached, the replay loop must
reproduce the event engine's observability byte for byte: the same
per-cause stall attribution, the same interval samples, the same trace
events -- and observability must stay neutral (collectors on/off change
no simulated number).  The conservation invariant
(``issue + stalls == warps x cycles``, exact ``fsum`` equality) is
re-checked on every run.
"""

import json
from dataclasses import replace

import pytest

from repro.chip.config import ChipConfig
from repro.chip.simulator import simulate_chip
from repro.core import partitioned_baseline
from repro.experiments.runner import Runner
from repro.obs import ChipCollector, Collector
from repro.sm.simulator import resolved_engine, simulate

KERNELS = ("vectoradd", "matrixmul", "needle", "bfs")
PARTITIONS = ("baseline", "unified384")
MSHRS = (0, 4)


@pytest.fixture(scope="module")
def runner():
    return Runner("tiny")


def _partition(runner, kernel, name):
    if name == "baseline":
        return partitioned_baseline()
    try:
        return runner.allocation(kernel).partition
    except Exception:
        pytest.skip(f"{kernel} has no unified-384 allocation at this scale")


def _config(runner, mshr):
    cfg = runner.config
    if mshr:
        # Banked open-page timing alongside the MSHRs -- the replayer's
        # hardest instrumented arm (bank/MSHR stall splitting).
        return replace(
            cfg, mshr_entries=mshr, dram_banks=8, dram_row_hit_latency=160
        )
    return replace(cfg, mshr_entries=0)


def _warm(ck, cfg):
    # Defeat the tiered warm-up: every case below must exercise the
    # real replayer, not the event-engine warm-up pass.
    ck._plan_cache[("colwarm", cfg.cache_line_bytes)] = True


def _dumps(payload):
    return json.dumps(payload, sort_keys=True)


# -- per-cause attribution equality, SM scope -----------------------------
@pytest.mark.parametrize("mshr", MSHRS)
@pytest.mark.parametrize("part_name", PARTITIONS)
@pytest.mark.parametrize("kernel", KERNELS)
def test_instrumented_engines_identical(runner, kernel, part_name, mshr):
    ck = runner.compiled(kernel)
    part = _partition(runner, kernel, part_name)
    cfg = _config(runner, mshr)
    _warm(ck, cfg)
    obs_e = Collector(metrics_window=500, trace=True, max_trace_events=200_000)
    obs_c = Collector(metrics_window=500, trace=True, max_trace_events=200_000)
    event = simulate(ck, part, replace(cfg, engine="event"), collector=obs_e)
    columnar = simulate(
        ck, part, replace(cfg, engine="columnar"), collector=obs_c
    )
    assert columnar == event
    # Per cause, not just totals: every cause the event engine charged,
    # the replayer must charge identically (and vice versa).
    assert obs_c.stall_totals() == obs_e.stall_totals()
    assert obs_c.issue_cycles == obs_e.issue_cycles
    # Conservation holds exactly on both sides.
    assert obs_e.conservation_errors() == []
    assert obs_c.conservation_errors() == []
    # Full payload byte-identity: stall report, interval metrics, trace.
    assert _dumps(obs_c.report()) == _dumps(obs_e.report())
    assert _dumps(obs_c.metrics_payload()) == _dumps(obs_e.metrics_payload())
    assert _dumps(obs_c.trace_payload()) == _dumps(obs_e.trace_payload())


# -- per-cause attribution equality, chip scope ---------------------------
@pytest.mark.parametrize("part_dram", (False, True))
@pytest.mark.parametrize("mshr", MSHRS)
@pytest.mark.parametrize("kernel", ("vectoradd", "needle"))
def test_instrumented_chip_engines_identical(runner, kernel, mshr, part_dram):
    """Shared arbitrated DRAM, 4 SMs, DRAM-window and CTA taps live."""
    ck = runner.compiled(kernel)
    part = partitioned_baseline()
    cfg = _config(runner, mshr)
    _warm(ck, cfg)
    nch = 4 if part_dram else 2
    chip_e = ChipConfig(
        num_sms=4, dram_bytes_per_cycle=32.0, dram_channels=2,
        dram_partitioned=part_dram, sm=replace(cfg, engine="event"),
    )
    chip_c = replace(chip_e, sm=replace(cfg, engine="columnar"))
    mk = lambda: ChipCollector(  # noqa: E731
        4, nch, metrics_window=500, trace=True, max_trace_events=500_000,
        dram_partitioned=part_dram,
    )
    obs_e, obs_c = mk(), mk()
    event = simulate_chip(ck, part, chip_e, chip_collector=obs_e)
    columnar = simulate_chip(ck, part, chip_c, chip_collector=obs_c)
    # ChipResult.config embeds the (engine-carrying) ChipConfig; compare
    # the simulated fields, which must not see the engine at all.
    assert columnar.cycles == event.cycles
    assert columnar.per_sm == event.per_sm
    assert columnar.ctas_per_sm == event.ctas_per_sm
    assert columnar.dram_channel_bytes == event.dram_channel_bytes
    assert columnar.notes == event.notes
    assert obs_c.stall_totals() == obs_e.stall_totals()
    assert obs_e.conservation_errors() == []
    assert obs_c.conservation_errors() == []
    assert _dumps(obs_c.report()) == _dumps(obs_e.report())
    assert _dumps(obs_c.chipmetrics_payload()) == _dumps(
        obs_e.chipmetrics_payload()
    )
    assert _dumps(obs_c.trace_payload()) == _dumps(obs_e.trace_payload())


# -- neutrality: collectors on/off under engine="columnar" ----------------
@pytest.mark.parametrize("mshr", MSHRS)
@pytest.mark.parametrize("kernel", KERNELS)
def test_columnar_observability_is_neutral(runner, kernel, mshr):
    ck = runner.compiled(kernel)
    part = partitioned_baseline()
    cfg = replace(_config(runner, mshr), engine="columnar")
    _warm(ck, cfg)
    bare = simulate(ck, part, cfg)
    col = Collector(metrics_window=500, trace=True)
    instrumented = simulate(ck, part, cfg, collector=col)
    # A live collector fills result.stall_cycles (per contract); every
    # simulated number must be untouched by instrumentation.
    assert replace(instrumented, stall_cycles={}) == bare
    assert set(instrumented.stall_cycles)  # and the attribution is there
    assert col.warps  # the collector really observed the run


@pytest.mark.parametrize("mshr", MSHRS)
def test_columnar_chip_observability_is_neutral(runner, mshr):
    ck = runner.compiled("needle")
    part = partitioned_baseline()
    cfg = replace(_config(runner, mshr), engine="columnar")
    _warm(ck, cfg)
    chip = ChipConfig(
        num_sms=4, dram_bytes_per_cycle=32.0, dram_channels=2, sm=cfg
    )
    bare = simulate_chip(ck, part, chip)
    cc = ChipCollector(4, 2, metrics_window=500, trace=True)
    instrumented = simulate_chip(ck, part, chip, chip_collector=cc)
    assert instrumented.cycles == bare.cycles
    # Per-SM results match modulo the stall attribution the collector
    # deliberately fills in.
    assert [replace(r, stall_cycles={}) for r in instrumented.per_sm] == list(
        bare.per_sm
    )
    assert instrumented.ctas_per_sm == bare.ctas_per_sm
    assert instrumented.dram_channel_bytes == bare.dram_channel_bytes
    assert instrumented.notes == bare.notes
    assert cc.warps


# -- the replay path is really taken (no silent fallback) -----------------
def test_instrumented_run_uses_replay_path(runner, monkeypatch):
    """A warm kernel + live collector must dispatch to the replayer."""
    import repro.sm.replay as replay_mod

    calls = []
    real = replay_mod.replay_simulate

    def spy(*args, **kwargs):
        calls.append(1)
        return real(*args, **kwargs)

    monkeypatch.setattr(replay_mod, "replay_simulate", spy)
    ck = runner.compiled("vectoradd")
    cfg = replace(runner.config, engine="columnar")
    _warm(ck, cfg)
    assert resolved_engine(ck, cfg) == "columnar"
    col = Collector(metrics_window=500, trace=True)
    simulate(ck, partitioned_baseline(), cfg, collector=col)
    assert calls, "instrumented columnar run fell back to the event engine"
    assert col.warps and col.conservation_errors() == []


# -- engine provenance (Runner records the resolved engine) ---------------
def test_runner_records_resolved_engines():
    rn = Runner("tiny")
    part = partitioned_baseline()
    rn.simulate("vectoradd", part)  # cold: event warm-up
    rn.simulate("vectoradd", part, thread_target=512)  # warm: columnar
    summary = rn.engine_summary()
    assert summary["configured"] == "columnar"
    assert summary["resolved"] == {"columnar": 1, "event": 1}
    assert summary["mixed"] is True


def test_engine_records_ship_through_journal():
    """Worker-recorded engine entries reach the parent via adopt()."""
    rn = Runner("tiny")
    rn.journal_reset()
    rn.simulate("vectoradd", partitioned_baseline())
    entries = rn.journal_reset()
    kinds = {kind for kind, _, _ in entries}
    assert "engine" in kinds
    parent = Runner("tiny")
    parent.adopt(entries)
    assert parent.engine_summary()["resolved"] == {"event": 1}


def test_sim_metrics_records_configured_engine():
    rn = Runner("tiny")
    rn.simulate("vectoradd", partitioned_baseline())
    payload = rn.sim_metrics()
    assert [r["engine"] for r in payload["simulations"]] == ["columnar"]
