"""Fleet-scope span tracing: recorder unit tests, executor integration,
and the observability-neutrality contract (spans change no simulated
result, ``--metrics-out`` stays byte-identical across ``--jobs``)."""

import json
import os

import pytest

from repro.experiments import figure7
from repro.experiments.artifacts import DiskCache
from repro.experiments.executor import Executor, Job
from repro.experiments.runner import Runner
from repro.obs.manifest import sm_config_digest
from repro.obs.spans import (
    SPANS_SCHEMA,
    SPANS_TRACE_SCHEMA,
    SpanRecorder,
    default_spans_name,
    validate_spans,
)
from repro.obs.trace import validate_trace
from repro.sm import SMConfig
from repro.sm.serialize import result_to_dict

BENCH = ("vectoradd", "scalarprod")


class _FakeJob:
    kind = "baseline"
    benchmark = "x"

    def describe(self):
        return "baseline x"


class TestRecorderUnit:
    def test_phase_and_span_bookkeeping(self):
        rec = SpanRecorder(command="unit")
        submit = rec.phase_start("p1", workers=2)
        rec.record_job(
            job=_FakeJob(), index=0, submit=submit,
            start=submit + 0.5, end=submit + 1.75, worker=42,
        )
        rec.phase_end()
        payload = rec.to_payload()
        assert payload["schema"] == SPANS_SCHEMA
        assert not validate_spans(payload)
        span = payload["spans"][0]
        assert span["queued_seconds"] == pytest.approx(0.5)
        assert span["seconds"] == pytest.approx(1.25)
        assert span["status"] == "done"
        assert span["worker"] == 42
        assert payload["phases"][0]["label"] == "p1"
        assert payload["phases"][0]["jobs"] == 1

    def test_status_classification(self):
        rec = SpanRecorder()
        submit = rec.phase_start("p", workers=1)
        common = dict(job=_FakeJob(), submit=submit, start=submit,
                      end=submit + 1.0, worker=1)
        err = rec.record_job(index=0, error="AllocationError: no", **common)
        hit = rec.record_job(
            index=1, cache={"trace_hits": 1, "trace_misses": 0}, **common
        )
        miss = rec.record_job(
            index=2, cache={"trace_hits": 1, "trace_misses": 1}, **common
        )
        plain = rec.record_job(index=3, **common)
        assert err.status == "expected-error"
        assert hit.status == "cache-hit"
        assert miss.status == "done"
        assert plain.status == "done"

    def test_validate_catches_time_disorder_and_bad_status(self):
        rec = SpanRecorder()
        submit = rec.phase_start("p", workers=1)
        rec.record_job(job=_FakeJob(), index=0, submit=submit,
                       start=submit, end=submit + 1.0, worker=1)
        rec.phase_end()
        payload = rec.to_payload()
        payload["spans"][0]["start"] = payload["spans"][0]["submit"] - 1.0
        payload["spans"][0]["status"] = "nonsense"
        problems = validate_spans(payload)
        assert any("not ordered" in p for p in problems)
        assert any("unknown status" in p for p in problems)

    def test_default_name_shape(self):
        rec = SpanRecorder()
        name = default_spans_name(rec.to_payload())
        assert name.startswith("spans-")
        assert name.endswith(".json")

    def test_summary_rolls_up_phases_and_workers(self):
        rec = SpanRecorder()
        submit = rec.phase_start("p", workers=2)
        for i, worker in enumerate((11, 12, 11)):
            rec.record_job(job=_FakeJob(), index=i, submit=submit,
                           start=submit + i, end=submit + i + 1.0,
                           worker=worker)
        rec.phase_end()
        s = rec.summary()
        assert s["jobs"] == 3
        assert s["statuses"]["done"] == 3
        assert s["phases"][0]["busy_seconds"] == pytest.approx(3.0)
        assert s["phases"][0]["critical_seconds"] == pytest.approx(1.0)
        by_worker = {w["worker"]: w["jobs"] for w in s["workers"]}
        assert by_worker == {11: 2, 12: 1}
        assert "3 jobs" in rec.format_summary()


class TestExecutorIntegration:
    def test_serial_spans_record_every_job(self):
        rn = Runner("tiny")
        rec = SpanRecorder(command="test serial")
        ex = Executor(rn, jobs=1, spans=rec)
        ex.prime([Job("baseline", b) for b in BENCH], label="serial")
        payload = rec.to_payload()
        assert not validate_spans(payload)
        assert payload["jobs"] == len(BENCH)
        for span in payload["spans"]:
            assert span["phase"] == "serial"
            assert span["worker"] == os.getpid()
            assert span["config_digest"] == sm_config_digest(rn.config)
            assert span["adopted"] == 0  # no shipping on the serial path

    def test_forked_spans_record_workers_and_adoption(self):
        rn = Runner("tiny")
        rec = SpanRecorder()
        ex = Executor(rn, jobs=2, spans=rec)
        ex.prime([Job("baseline", b) for b in BENCH], label="forked")
        payload = rec.to_payload()
        assert not validate_spans(payload)
        assert payload["jobs"] == len(BENCH)
        workers = {s["worker"] for s in payload["spans"]}
        assert os.getpid() not in workers  # jobs ran in forked children
        assert all(s["adopted"] > 0 for s in payload["spans"])

    def test_variant_jobs_carry_their_own_config_digest(self):
        rn = Runner("tiny")
        rec = SpanRecorder()
        ex = Executor(rn, jobs=1, spans=rec)
        variant = SMConfig(mshr_entries=4)
        ex.prime([Job("baseline", "vectoradd", config=variant)], label="v")
        span = rec.to_payload()["spans"][0]
        assert span["config_digest"] == sm_config_digest(variant)
        assert span["config_digest"] != sm_config_digest(rn.config)

    def test_expected_error_span(self):
        rec = SpanRecorder()
        ex = Executor(Runner("tiny"), jobs=1, spans=rec)
        ex.prime([Job("unified", "vectoradd", total_kb=8)], label="err")
        span = rec.to_payload()["spans"][0]
        assert span["status"] == "expected-error"
        assert "AllocationError" in span["error"]

    def test_warm_disk_cache_classifies_cache_hit(self, tmp_path):
        jobs = [Job("baseline", "vectoradd")]
        ex1 = Executor(Runner("tiny", cache=DiskCache(tmp_path)), jobs=1,
                       spans=SpanRecorder())
        ex1.prime(jobs, label="cold")
        cold = ex1.spans.to_payload()["spans"][0]
        assert sum(
            v for k, v in cold["cache"].items() if k.endswith("_misses")
        ) > 0
        rec = SpanRecorder()
        ex2 = Executor(Runner("tiny", cache=DiskCache(tmp_path)), jobs=1,
                       spans=rec)
        ex2.prime(jobs, label="warm")
        warm = rec.to_payload()["spans"][0]
        assert warm["status"] == "cache-hit"

    def test_trace_payload_validates_and_carries_schema(self):
        rec = SpanRecorder(command="trace test")
        ex = Executor(Runner("tiny"), jobs=2, spans=rec)
        ex.prime([Job("baseline", b) for b in BENCH], label="t")
        payload = rec.trace_payload()
        assert not validate_trace(payload)
        assert payload["otherData"]["schema"] == SPANS_TRACE_SCHEMA
        names = {e["name"] for e in payload["traceEvents"] if e["ph"] == "X"}
        assert "t" in names  # the phase slice
        assert any(n.startswith("baseline ") for n in names)  # job slices


class TestFleetNeutrality:
    """Spans must be cycle-neutral: same results with tracing on or off."""

    def test_results_bit_identical_with_spans_on(self):
        plain = Runner("tiny")
        figure7.run(runner=plain, benchmarks=BENCH)
        traced = Executor(Runner("tiny"), jobs=2, spans=SpanRecorder())
        figure7.run(executor=traced, benchmarks=BENCH)
        for name in BENCH:
            a = result_to_dict(plain.baseline(name))
            b = result_to_dict(traced.runner.baseline(name))
            assert a == b
            ua, _ = plain.unified(name, total_kb=384)
            ub, _ = traced.runner.unified(name, total_kb=384)
            assert result_to_dict(ua) == result_to_dict(ub)

    def test_metrics_payload_byte_identical_across_jobs_and_spans(self):
        blobs = []
        for jobs, spans in ((1, None), (2, SpanRecorder()), (4, SpanRecorder())):
            ex = Executor(Runner("tiny"), jobs=jobs, spans=spans)
            figure7.run(executor=ex, benchmarks=BENCH)
            blobs.append(
                json.dumps(ex.runner.sim_metrics(), indent=2, sort_keys=True)
            )
        assert blobs[0] == blobs[1] == blobs[2]
