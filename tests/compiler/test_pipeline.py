"""Integration tests for the compile pipeline (trace -> CompiledKernel)."""

import pytest

from repro.compiler import compile_kernel, compile_warp
from repro.compiler.pipeline import LOCAL_BASE, SLOT_BYTES
from repro.isa import CTATrace, KernelTrace, LaunchConfig, OpClass, WarpBuilder


def _pressure_warp(pool_size=10, rounds=4, lds=False):
    """A warp with tunable register pressure and optional memory ops."""
    b = WarpBuilder()
    pool = [b.iconst() for _ in range(pool_size)]
    for r in range(rounds):
        x = b.load_global([1024 * r + 4 * t for t in range(32)], pool[0])
        for acc in pool:
            b.alu_into(acc, x)
        if lds:
            b.store_shared([4 * t for t in range(32)], x)
            b.barrier()
    out = b.alu(pool[0], pool[1])
    b.store_global([4 * t for t in range(32)], out)
    return b.ops


def _kernel(num_ctas=2, warps=2, **kw):
    lc = LaunchConfig(threads_per_cta=warps * 32, num_ctas=num_ctas, smem_bytes_per_cta=256)
    ctas = [CTATrace([_pressure_warp(**kw) for _ in range(warps)]) for _ in range(num_ctas)]
    return KernelTrace("pressure", lc, ctas)


class TestCompileWarp:
    def test_no_spill_budget_preserves_op_count(self):
        ops = _pressure_warp()
        cw = compile_warp(ops, num_regs=64)
        assert cw.num_ops == len(ops)
        assert cw.spill_slots == 0

    def test_tight_budget_inserts_spill_code(self):
        ops = _pressure_warp(pool_size=16)
        cw = compile_warp(ops, num_regs=8)
        assert cw.num_ops > len(ops)
        assert cw.spill_slots > 0
        locals_ = [o for o in cw.ops if o.op in (OpClass.LOAD_LOCAL, OpClass.STORE_LOCAL)]
        assert locals_, "expected spill instructions"
        for o in locals_:
            assert o.addrs is not None
            assert all(a >= LOCAL_BASE for a in o.addrs)
            # One slot per warp: lane addresses are consecutive words.
            assert list(o.addrs) == list(range(o.addrs[0], o.addrs[0] + 4 * o.active, 4))

    def test_spill_addresses_distinct_across_warps(self):
        ops = _pressure_warp(pool_size=16)
        a = compile_warp(ops, num_regs=8, warp_uid=0)
        b = compile_warp(ops, num_regs=8, warp_uid=1)
        addrs_a = {x for o in a.ops if o.op.space and o.op.space.name == "LOCAL" for x in o.addrs}
        addrs_b = {x for o in b.ops if o.op.space and o.op.space.name == "LOCAL" for x in o.addrs}
        assert addrs_a and addrs_b
        assert addrs_a.isdisjoint(addrs_b)


class TestCompileKernel:
    def test_default_budget_is_max_live(self):
        trace = _kernel()
        ck = compile_kernel(trace)
        assert ck.regs_per_thread == ck.max_live
        assert ck.total_ops == trace.total_ops
        assert ck.spill_slots == 0

    def test_dynamic_instruction_overhead_decreases_with_regs(self):
        trace = _kernel(pool_size=20, rounds=6)
        base = compile_kernel(trace)
        ratios = []
        for regs in (8, 12, 18, 24, 64):
            ck = compile_kernel(trace, regs_per_thread=regs)
            ratios.append(ck.dynamic_instruction_ratio(base.total_ops))
        assert ratios == sorted(ratios, reverse=True)
        assert ratios[-1] == 1.0

    def test_rf_traffic_reduction_near_paper_value(self):
        # The prior-work hierarchy cuts MRF reads by ~60% for typical
        # instruction mixes, which contain dependent ALU chains between
        # memory operations (unlike the pathological accumulator-only
        # kernel above, which is intentionally MRF-heavy).
        b = WarpBuilder()
        state = [b.iconst() for _ in range(4)]
        for r in range(8):
            x = b.load_global([512 * r + 4 * t for t in range(32)])
            for _ in range(6):  # dependent chain: LRF/ORF hits
                x = b.alu(x, state[r % 4])
            y = b.sfu(x)
            z = b.alu(x, y)
            b.alu_into(state[r % 4], z)
        b.store_global([4 * t for t in range(32)], state[0])
        lc = LaunchConfig(threads_per_cta=32, num_ctas=1)
        ck = compile_kernel(KernelTrace("mix", lc, [CTATrace([b.ops])]))
        frac = ck.rf_traffic().mrf_read_fraction
        assert 0.1 < frac < 0.6

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            compile_kernel(_kernel(), regs_per_thread=0)

    def test_stats_aggregation(self):
        ck = compile_kernel(_kernel())
        s = ck.stats()
        assert s.total_ops == ck.total_ops
        assert s.global_loads > 0 and s.global_stores > 0

    def test_shape_cache_shares_work_across_identical_warps(self):
        # All warps share a shape; spill slots must agree everywhere.
        trace = _kernel(num_ctas=3, warps=4, pool_size=16)
        ck = compile_kernel(trace, regs_per_thread=8)
        slot_counts = {w.spill_slots for cta in ck.ctas for w in cta.warps}
        assert len(slot_counts) == 1

    def test_local_regions_do_not_overlap(self):
        trace = _kernel(num_ctas=2, warps=2, pool_size=16)
        ck = compile_kernel(trace, regs_per_thread=8)
        regions = []
        for cta in ck.ctas:
            for w in cta.warps:
                addrs = [
                    a
                    for o in w.ops
                    if o.op in (OpClass.LOAD_LOCAL, OpClass.STORE_LOCAL)
                    for a in o.addrs
                ]
                if addrs:
                    regions.append((min(addrs), max(addrs)))
        regions.sort()
        for (lo1, hi1), (lo2, _) in zip(regions, regions[1:]):
            assert hi1 < lo2


class TestSlotLayout:
    def test_slot_stride_constant(self):
        assert SLOT_BYTES == 128  # 32 lanes x 4 bytes: one cache line
