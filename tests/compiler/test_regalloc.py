"""Unit and property tests for the linear-scan spill scheduler.

The key correctness oracle is a small interpreter that replays a spill
schedule, tracking which virtual-register *value* each architectural
register and spill slot holds, and checks that every rewritten op reads
exactly the values the original op read.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import max_live_registers, schedule_registers
from repro.compiler.regalloc import Fill, Rewrite, Spill
from repro.isa import WarpBuilder


def _shape(ops):
    return [(op.op, op.dst, op.srcs) for op in ops]


def replay_and_check(shape, schedule):
    """Replay a schedule and verify value flow; returns (fills, spills)."""
    reg_value: dict[int, int] = {}  # arch reg -> vreg whose value it holds
    slot_value: dict[int, int] = {}  # spill slot -> vreg value stored
    fills = spills = 0
    for entry in schedule.entries:
        if isinstance(entry, Fill):
            assert entry.slot in slot_value, "fill from a never-written slot"
            reg_value[entry.reg] = slot_value[entry.slot]
            fills += 1
        elif isinstance(entry, Spill):
            assert entry.reg in reg_value, "spill of an empty register"
            slot_value[entry.slot] = reg_value[entry.reg]
            spills += 1
        else:
            assert isinstance(entry, Rewrite)
            _, dst, srcs = shape[entry.index]
            expected = list(dict.fromkeys(srcs))
            got = [reg_value[r] for r in entry.srcs]
            assert got == expected, (
                f"op {entry.index}: reads values {got}, expected {expected}"
            )
            if dst is not None:
                reg_value[entry.dst] = dst
    rewrites = [e for e in schedule.entries if isinstance(e, Rewrite)]
    assert [e.index for e in rewrites] == list(range(len(shape))), (
        "every original op must appear exactly once, in order"
    )
    return fills, spills


class TestNoSpillRegime:
    def test_budget_at_max_live_has_no_spills(self):
        b = WarpBuilder()
        pool = [b.iconst() for _ in range(6)]
        for _ in range(5):
            for acc in pool:
                b.alu_into(acc, pool[0])
        b.touch(*pool)
        peak = max_live_registers(b.ops)
        sched = schedule_registers(_shape(b.ops), peak)
        assert sched.num_fills == 0
        assert sched.num_spills == 0
        assert sched.num_slots == 0
        replay_and_check(_shape(b.ops), sched)

    def test_budget_below_max_live_spills(self):
        b = WarpBuilder()
        pool = [b.iconst() for _ in range(8)]
        for _ in range(3):
            for acc in pool:
                b.alu_into(acc, pool[(pool.index(acc) + 1) % len(pool)])
        for acc in pool:
            b.touch(acc)
        peak = max_live_registers(b.ops)
        assert peak == 9  # 8 pool values plus an in-flight result
        sched = schedule_registers(_shape(b.ops), 4)
        assert sched.num_fills > 0
        assert sched.num_spills > 0
        replay_and_check(_shape(b.ops), sched)

    def test_spill_count_monotone_in_budget(self):
        b = WarpBuilder()
        pool = [b.iconst() for _ in range(12)]
        for i in range(40):
            b.alu_into(pool[i % 12], pool[(i + 5) % 12])
        for acc in pool:
            b.touch(acc)
        overheads = []
        for regs in (4, 6, 8, 12, 16):
            sched = schedule_registers(_shape(b.ops), regs)
            replay_and_check(_shape(b.ops), sched)
            overheads.append(sched.num_fills + sched.num_spills)
        assert overheads == sorted(overheads, reverse=True)
        assert overheads[-1] == 0  # 16 >= max_live of 13


class TestEdgeCases:
    def test_empty_stream(self):
        sched = schedule_registers([], 8)
        assert sched.entries == []
        assert sched.num_slots == 0

    def test_zero_budget_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            schedule_registers([], 0)

    def test_too_many_operands_for_budget(self):
        b = WarpBuilder()
        vals = [b.iconst() for _ in range(5)]
        b.touch(*vals)
        with pytest.raises((ValueError, RuntimeError)):
            schedule_registers(_shape(b.ops), 3)

    def test_duplicate_sources_counted_once(self):
        b = WarpBuilder()
        v = b.iconst()
        b.alu(v, v, v)
        sched = schedule_registers(_shape(b.ops), 2)
        op = [e for e in sched.entries if isinstance(e, Rewrite)][-1]
        assert len(op.srcs) == 1

    def test_dead_destination_frees_register(self):
        b = WarpBuilder()
        keep = b.iconst()
        for _ in range(20):
            b.alu(keep)  # results are dead
        b.touch(keep)
        sched = schedule_registers(_shape(b.ops), 2)
        assert sched.num_spills == 0

    def test_clean_revictim_not_respilled(self):
        # A value spilled once, reloaded, and not modified must not be
        # stored a second time when evicted again.
        b = WarpBuilder()
        vals = [b.iconst() for _ in range(4)]
        b.touch(vals[0])
        b.touch(vals[1])
        b.touch(vals[0])
        b.touch(vals[1])
        for v in vals:
            b.touch(v)
        sched = schedule_registers(_shape(b.ops), 3)
        replay_and_check(_shape(b.ops), sched)
        spilled_slots = [e.slot for e in sched.entries if isinstance(e, Spill)]
        assert len(spilled_slots) == len(set(spilled_slots))


# ---------------------------------------------------------------------------
# Property-based tests
# ---------------------------------------------------------------------------
@st.composite
def warp_streams(draw):
    """Random well-formed warp streams over virtual registers."""
    b = WarpBuilder()
    live = [b.iconst()]
    n_ops = draw(st.integers(min_value=1, max_value=60))
    for _ in range(n_ops):
        kind = draw(st.integers(min_value=0, max_value=3))
        picks = draw(
            st.lists(
                st.integers(min_value=0, max_value=len(live) - 1),
                min_size=1,
                max_size=3,
            )
        )
        srcs = [live[i] for i in picks]
        if kind == 0:
            live.append(b.alu(*srcs))
        elif kind == 1:
            b.alu_into(srcs[0], *srcs[1:])
        elif kind == 2:
            live.append(b.sfu(*srcs))
        else:
            b.touch(*srcs)
        if len(live) > 20:
            live = live[-20:]
    b.touch(*live[-4:])
    return b.ops


@given(ops=warp_streams(), regs=st.integers(min_value=6, max_value=24))
@settings(max_examples=60, deadline=None)
def test_schedule_preserves_value_flow(ops, regs):
    shape = _shape(ops)
    sched = schedule_registers(shape, regs)
    replay_and_check(shape, sched)


@given(ops=warp_streams())
@settings(max_examples=40, deadline=None)
def test_no_spills_at_peak_liveness(ops):
    peak = max_live_registers(ops)
    sched = schedule_registers(_shape(ops), peak)
    assert sched.num_fills == 0 and sched.num_spills == 0


@given(ops=warp_streams(), regs=st.integers(min_value=6, max_value=24))
@settings(max_examples=40, deadline=None)
def test_register_budget_respected(ops, regs):
    sched = schedule_registers(_shape(ops), regs)
    assert sched.regs_used <= regs
    for entry in sched.entries:
        if isinstance(entry, Rewrite):
            used = set(entry.srcs) | ({entry.dst} if entry.dst is not None else set())
        elif isinstance(entry, (Fill, Spill)):
            used = {entry.reg}
        assert all(0 <= r < regs for r in used)
