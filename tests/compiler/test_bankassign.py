"""Tests for bank-aware register relabelling (ref [27] technique)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.bankassign import assign_banks, bank_conflict_weight, remap_shape
from repro.compiler.rfhierarchy import OperandTags, tag_hierarchy
from repro.isa import OpClass


def _op(dst, *srcs):
    return (OpClass.ALU, dst, tuple(srcs))


def _tags_for(shape):
    return tag_hierarchy(shape)


class TestAssignment:
    def test_conflicting_pair_split_across_banks(self):
        # Registers 0 and 4 collide under the identity mapping (both
        # bank 0); frequent co-reads must separate them.
        shape = [_op(8, 0, 4) for _ in range(10)]
        tags = [
            OperandTags(mrf_reads=(0, 4)) for _ in shape
        ]
        mapping = assign_banks(shape, tags, num_regs=16)
        assert mapping[0] % 4 != mapping[4] % 4

    def test_mapping_is_bijection(self):
        shape = [_op(i % 8, (i + 1) % 8, (i + 3) % 8) for i in range(30)]
        tags = _tags_for(shape)
        mapping = assign_banks(shape, tags, num_regs=8)
        assert len(set(mapping.values())) == len(mapping)

    def test_capacity_respected(self):
        # 8 registers over 4 banks: at most ceil(8/4)=2 per bank.
        shape = [_op(i, (i + 1) % 8) for i in range(8)]
        tags = _tags_for(shape)
        mapping = assign_banks(shape, tags, num_regs=8)
        from collections import Counter

        loads = Counter(v % 4 for v in mapping.values())
        assert max(loads.values()) <= 2

    def test_remap_preserves_structure(self):
        shape = [_op(0), _op(1, 0), _op(2, 0, 1)]
        tags = _tags_for(shape)
        mapping = assign_banks(shape, tags, num_regs=4)
        new_shape, new_tags = remap_shape(shape, tags, mapping)
        assert len(new_shape) == len(shape)
        for (op0, d0, s0), (op1, d1, s1) in zip(shape, new_shape):
            assert op0 is op1
            assert (d1 is None) == (d0 is None)
            assert len(s1) == len(s0)
        # Dataflow preserved: op 2 still reads op 0's and op 1's results.
        assert new_shape[2][2] == (new_shape[0][1], new_shape[1][1])


class TestConflictReduction:
    def test_weight_metric(self):
        groups = [(0, 4), (0, 4), (1, 2)]
        identity = {r: r for r in range(8)}
        assert bank_conflict_weight(groups, {r: r % 4 for r in range(8)}) == 2

    @given(st.lists(st.tuples(st.integers(0, 11), st.integers(0, 11)), min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_never_worse_than_identity(self, pairs):
        shape = [_op(8 + i % 4, a, b) for i, (a, b) in enumerate(pairs)]
        tags = [OperandTags(mrf_reads=tuple({a, b})) for a, b in pairs]
        groups = [t.mrf_reads for t in tags]
        mapping = assign_banks(shape, tags, num_regs=16)
        identity_cost = bank_conflict_weight(
            groups, {r: r % 4 for r in range(16)}
        )
        new_cost = bank_conflict_weight(
            [tuple(mapping[r] for r in g) for g in groups],
            {r: r % 4 for r in range(64)},
        )
        assert new_cost <= identity_cost
