"""Unit tests for liveness analysis."""

import pytest

from repro.compiler import live_intervals, max_live_registers
from repro.isa import WarpBuilder


class TestLiveIntervals:
    def test_simple_chain(self):
        b = WarpBuilder()
        v0 = b.iconst()  # op 0
        v1 = b.alu(v0)  # op 1
        v2 = b.alu(v1)  # op 2
        b.touch(v2)  # op 3
        iv = live_intervals(b.ops)
        assert iv[v0] == (0, 1)
        assert iv[v1] == (1, 2)
        assert iv[v2] == (2, 3)

    def test_undefined_read_rejected(self):
        from repro.isa import OpClass, WarpOp

        b = WarpBuilder()
        b.iconst()
        ops = list(b.ops)
        ops.append(WarpOp(OpClass.ALU, dst=50, srcs=(99,)))
        with pytest.raises(ValueError, match="before definition"):
            live_intervals(ops)

    def test_long_lived_value(self):
        b = WarpBuilder()
        base = b.iconst()  # live across everything
        for _ in range(10):
            x = b.alu(base)
        iv = live_intervals(b.ops)
        assert iv[base] == (0, 10)


class TestMaxLive:
    def test_empty(self):
        assert max_live_registers([]) == 0

    def test_chain_needs_two(self):
        b = WarpBuilder()
        v = b.iconst()
        for _ in range(20):
            v = b.alu(v)
        # At each ALU the source and fresh destination are both live.
        assert max_live_registers(b.ops) == 2

    def test_accumulator_pool(self):
        b = WarpBuilder()
        pool = [b.iconst() for _ in range(10)]
        x = b.iconst()
        for acc in pool:
            b.alu_into(acc, x)
        b.touch(*pool)
        # 10 accumulators + x live together (x dies at last alu_into,
        # where all 10 accumulators are still live plus x itself).
        assert max_live_registers(b.ops) == 11

    def test_alu_into_does_not_grow_pressure(self):
        b = WarpBuilder()
        acc = b.iconst()
        x = b.iconst()
        for _ in range(50):
            b.alu_into(acc, x)
        b.touch(acc)
        assert max_live_registers(b.ops) == 2

    def test_dead_values_do_not_accumulate(self):
        b = WarpBuilder()
        for _ in range(30):
            b.iconst()  # each result is dead immediately
        assert max_live_registers(b.ops) == 1

    def test_known_diamond(self):
        b = WarpBuilder()
        a = b.iconst()
        x = b.alu(a)
        y = b.alu(a)
        b.alu(x, y)
        assert max_live_registers(b.ops) == 3  # a, x live at op 2; x,y,dst at op 3
