"""Equivalence tests for the once-per-kernel precompute pass.

These pin the cycle-identity contract at the unit level: every value a
plan caches, and every outcome a ``planned_*`` bank-model method
returns, must equal what the from-scratch :meth:`access` interface
computes -- across both designs, both unified variants, and unaligned
CTA shared-memory base offsets (the first-fit allocator guarantees no
alignment).  The end-to-end counterpart is
``tests/integration/test_golden_results.py``.
"""

import pytest

from repro.compiler.compiled import CompiledOp
from repro.compiler.precompute import (
    K_ALU,
    K_BARRIER,
    K_GLOBAL_LOAD,
    K_GLOBAL_STORE,
    K_SHARED_LOAD,
    K_SHARED_STORE,
    K_SFU,
    K_TEX,
    OpPlan,
    hist_bucket,
    plan_kernel,
)
from repro.core import partitioned_baseline
from repro.core.allocator import allocate_unified
from repro.core.partition import KB
from repro.isa.opcodes import OpClass
from repro.memory.banks import (
    ClusterPortUnifiedBanks,
    PartitionedBanks,
    UnifiedBanks,
)
from repro.memory.coalescer import coalesce_lines, coalesce_sectors

#: CTA shared-base offsets covering aligned, word-, and byte-unaligned
#: layouts plus values past each model's memo period (128 / 512 bytes).
SHARED_BASES = (0, 4, 12, 100, 128, 132, 512, 516, 1000)


def _op(opclass, *, dst=None, srcs=(), mrf_reads=(), addrs=None, mrf_writes=()):
    return CompiledOp(
        op=opclass,
        dst=dst,
        srcs=srcs,
        mrf_reads=mrf_reads,
        mrf_writes=mrf_writes,
        lrf_reads=0,
        orf_reads=0,
        lrf_writes=0,
        orf_writes=0,
        addrs=addrs,
        active=32,
    )


def _models():
    part = partitioned_baseline()
    uni = allocate_unified(
        384 * KB, regs_per_thread=21, threads_per_cta=256, smem_bytes_per_cta=2048
    ).partition
    return [PartitionedBanks(part), UnifiedBanks(uni), ClusterPortUnifiedBanks(uni)]


# ---------------------------------------------------------------------------
# kind mapping and eager plan facts
# ---------------------------------------------------------------------------


def test_kind_mapping_covers_timed_opclasses():
    expected = {
        OpClass.ALU: K_ALU,
        OpClass.SFU: K_SFU,
        OpClass.TEX: K_TEX,
        OpClass.LOAD_SHARED: K_SHARED_LOAD,
        OpClass.STORE_SHARED: K_SHARED_STORE,
        OpClass.LOAD_GLOBAL: K_GLOBAL_LOAD,
        OpClass.STORE_GLOBAL: K_GLOBAL_STORE,
        OpClass.LOAD_LOCAL: K_GLOBAL_LOAD,
        OpClass.STORE_LOCAL: K_GLOBAL_STORE,
        OpClass.BARRIER: K_BARRIER,
    }
    for opclass, kind in expected.items():
        addrs = tuple(range(0, 128, 4)) if opclass.is_memory else None
        assert OpPlan(_op(opclass, addrs=addrs), 128).kind == kind


def test_untimeable_opclass_rejected():
    with pytest.raises(ValueError, match="cannot be timed"):
        OpPlan(_op(OpClass.EXIT), 128)


def test_register_facts_match_access():
    op = _op(OpClass.ALU, mrf_reads=(0, 4, 8, 1), mrf_writes=(2,))
    pl = OpPlan(op, 128)
    assert pl.reg_counts == [3, 1, 0, 0]
    assert pl.reg_max == 3
    assert pl.reg_penalty == 2
    assert pl.reg_bucket == hist_bucket(3)
    assert pl.n_mrf_reads == 4
    assert pl.n_mrf_writes == 1
    for m in _models():
        ba = m.access(op)
        assert (pl.reg_penalty, pl.reg_bucket) == (
            ba.penalty,
            hist_bucket(ba.max_bank_accesses),
        )
        assert ba.data_row_accesses == 0


def test_global_plan_matches_coalescer():
    addrs = tuple((7919 * lane * lane) % (1 << 16) for lane in range(32))
    pl = OpPlan(_op(OpClass.LOAD_GLOBAL, addrs=addrs), 128)
    assert pl.segments == coalesce_lines(addrs, 128)
    assert pl.n_segments == len(pl.segments)
    # sector facts are deferred until a store/uncached-load needs them
    assert pl.n_sectors == -1
    assert pl.per_line_sectors is None
    sectors = coalesce_sectors(addrs)
    n_sectors, per_line_sectors = pl.sector_info(addrs, 128)
    assert n_sectors == pl.n_sectors == len(sectors)
    assert sum(per_line_sectors) == len(sectors)
    # per-line grouping replays the store path's ascending-line order
    per_line: dict[int, int] = {}
    for s in sectors:
        per_line[s - s % 128] = per_line.get(s - s % 128, 0) + 1
    assert pl.per_line_sectors == tuple(per_line.values())


def test_empty_addrs_memory_op_plans_cleanly():
    pl = OpPlan(_op(OpClass.STORE_GLOBAL, addrs=()), 128)
    assert pl.n_segments == 0
    assert pl.sector_info((), 128) == (0, ())
    assert pl.part_mem == (0, hist_bucket(0), 0)
    for m in _models():
        got = m.planned_global(pl)
        ba = m.access(_op(OpClass.STORE_GLOBAL, addrs=()), segments=[])
        assert got == (ba.penalty, hist_bucket(ba.max_bank_accesses), 0, 0)


# ---------------------------------------------------------------------------
# planned_* equivalence over real kernels
# ---------------------------------------------------------------------------


def _kernel_ops(kernel_name):
    from repro.experiments.runner import Runner

    ck = Runner("tiny").compiled(kernel_name)
    return [op for cta in ck.ctas[:2] for warp in cta.warps for op in warp.ops]


@pytest.mark.parametrize("kernel_name", ["matrixmul", "needle", "bfs"])
def test_planned_equals_access_on_kernel(kernel_name):
    ops = _kernel_ops(kernel_name)
    models = _models()
    checked = 0
    for op in ops:
        pl = OpPlan(op, 128)
        for m in models:
            for shared_base in SHARED_BASES:
                if pl.kind in (K_SHARED_LOAD, K_SHARED_STORE):
                    before = getattr(m, "arbitration_conflicts", 0)
                    ba = m.access(op, shared_base=shared_base)
                    arb = getattr(m, "arbitration_conflicts", 0) - before
                    got = m.planned_shared(pl, op.addrs, shared_base)
                elif pl.kind in (K_GLOBAL_LOAD, K_GLOBAL_STORE):
                    segs = coalesce_lines(op.addrs, 128)
                    before = getattr(m, "arbitration_conflicts", 0)
                    ba = m.access(op, segments=segs)
                    arb = getattr(m, "arbitration_conflicts", 0) - before
                    got = m.planned_global(pl)
                else:
                    before = getattr(m, "arbitration_conflicts", 0)
                    ba = m.access(op)
                    arb = getattr(m, "arbitration_conflicts", 0) - before
                    got = (pl.reg_penalty, pl.reg_bucket, 0, 0)
                assert got == (
                    ba.penalty,
                    hist_bucket(ba.max_bank_accesses),
                    ba.data_row_accesses,
                    arb,
                ), (kernel_name, type(m).__name__, op.op, shared_base)
                checked += 1
    assert checked > 0


def test_shared_memo_keys_distinguish_models():
    """The two unified variants must not share a shared-memory memo slot."""
    addrs = tuple(4 * lane for lane in range(32))
    op = _op(OpClass.LOAD_SHARED, addrs=addrs, mrf_reads=(0, 4))
    pl = OpPlan(op, 128)
    part, uni, uni_cp = _models()
    part.planned_shared(pl, addrs, 4)
    uni.planned_shared(pl, addrs, 4)
    uni_cp.planned_shared(pl, addrs, 4)
    tags = {key[0] for key in pl.shared_cache}
    assert tags == {"P", "U", "UC"}


def test_plan_kernel_caches_per_line_size():
    from repro.experiments.runner import Runner

    ck = Runner("tiny").compiled("vectoradd")
    plans_a = plan_kernel(ck, 128)
    plans_b = plan_kernel(ck, 128)
    assert plans_a is plans_b  # cached on the kernel
    plans_c = plan_kernel(ck, 64)
    assert plans_c is not plans_a  # line size changes the coalescing
    assert len(plans_a) == len(ck.ctas)
    for cta, cta_plans in zip(ck.ctas, plans_a):
        assert [len(wp) for wp in cta_plans] == [len(w.ops) for w in cta.warps]


def test_plan_kernel_interns_identical_ops():
    from repro.compiler.precompute import clear_plan_cache
    from repro.experiments.runner import Runner

    clear_plan_cache()
    runner = Runner("tiny")
    ck = runner.compiled("matrixmul")
    plans = plan_kernel(ck, 128)
    by_key: dict[tuple, OpPlan] = {}
    total = 0
    for cta, cta_plans in zip(ck.ctas, plans):
        for warp, warp_plans in zip(cta.warps, cta_plans):
            for op, pl in zip(warp.ops, warp_plans):
                total += 1
                key = (pl.kind, op.mrf_reads, len(op.mrf_writes), op.addrs)
                assert by_key.setdefault(key, pl) is pl  # equal key -> same plan
    assert len(by_key) < total  # loop-heavy kernels repeat patterns

    # A second compile of the same trace shares plan objects (and their
    # warmed memos) with the first -- the sweep-recompile fast path.
    from repro.compiler.pipeline import compile_kernel

    ck2 = compile_kernel(runner.trace("matrixmul"))
    assert ck2 is not ck
    plans2 = plan_kernel(ck2, 128)
    assert plans2[0][0][0] is plans[0][0][0]
    clear_plan_cache()
