"""Unit tests for MRF/ORF/LRF operand tagging."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.rfhierarchy import ORF_ENTRIES, tag_hierarchy
from repro.isa import OpClass


def A(dst, *srcs):
    return (OpClass.ALU, dst, tuple(srcs))


def SF(dst, *srcs):
    return (OpClass.SFU, dst, tuple(srcs))


def LDG(dst, *srcs):
    return (OpClass.LOAD_GLOBAL, dst, tuple(srcs))


def STG(*srcs):
    return (OpClass.STORE_GLOBAL, None, tuple(srcs))


def LDS(dst, *srcs):
    return (OpClass.LOAD_SHARED, dst, tuple(srcs))


def BAR():
    return (OpClass.BARRIER, None, ())


class TestLRF:
    def test_back_to_back_alu_forwards_through_lrf(self):
        tags = tag_hierarchy([A(0), A(1, 0)])
        assert tags[1].lrf_reads == 1
        assert tags[1].mrf_reads == ()

    def test_gap_falls_back_to_orf(self):
        tags = tag_hierarchy([A(0), A(1), A(2, 0)])
        assert tags[2].lrf_reads == 0
        assert tags[2].orf_reads == 1

    def test_sfu_result_not_lrf_eligible(self):
        # SFU latency (20 cycles) prevents next-cycle forwarding.
        tags = tag_hierarchy([SF(0), A(1, 0)])
        assert tags[1].lrf_reads == 0
        assert tags[1].orf_reads == 1

    def test_shared_load_result_not_lrf_eligible(self):
        tags = tag_hierarchy([LDS(0), A(1, 0)])
        assert tags[1].lrf_reads == 0
        assert tags[1].orf_reads == 1


class TestORF:
    def test_capacity_is_four(self):
        # Write 5 values, then read the oldest: it has been evicted.
        ops = [A(i) for i in range(ORF_ENTRIES + 1)] + [A(9, 0)]
        tags = tag_hierarchy(ops)
        assert tags[-1].orf_reads == 0
        assert tags[-1].mrf_reads == (0,)
        # The producer of reg 0 is retroactively promoted to MRF write.
        assert tags[0].mrf_write

    def test_recent_value_hits_orf(self):
        ops = [A(i) for i in range(ORF_ENTRIES)] + [A(9, 0)]
        tags = tag_hierarchy(ops)
        assert tags[-1].orf_reads == 1
        assert not tags[0].mrf_write

    def test_clobbered_register_entry_is_stale(self):
        # reg 0 written twice; old ORF entry must not serve the new value.
        ops = [A(0), A(1), A(0, 1), A(2, 0)]
        tags = tag_hierarchy(ops)
        # read of reg 0 at op 3: producer is op 2, which is in ORF -> orf
        assert tags[3].lrf_reads == 1 or tags[3].orf_reads == 1


class TestDeschedulePoints:
    def test_values_live_across_load_go_to_mrf(self):
        ops = [A(0), LDG(1), A(2, 0)]
        tags = tag_hierarchy(ops)
        assert tags[2].mrf_reads == (0,)
        assert tags[0].mrf_write  # retroactive write-back

    def test_barrier_invalidates_hierarchy(self):
        ops = [A(0), BAR(), A(1, 0)]
        tags = tag_hierarchy(ops)
        assert tags[2].mrf_reads == (0,)
        assert tags[0].mrf_write

    def test_load_result_goes_directly_to_mrf(self):
        ops = [LDG(0), A(1, 0)]
        tags = tag_hierarchy(ops)
        assert tags[0].mrf_write
        assert not tags[0].orf_write
        assert tags[1].mrf_reads == (0,)

    def test_value_never_reread_is_not_written_back(self):
        # Minimal write-back: dead-after-segment values never touch MRF.
        ops = [A(0), A(1, 0), LDG(2)]
        tags = tag_hierarchy(ops)
        assert not tags[0].mrf_write
        assert not tags[1].mrf_write


class TestTrafficReduction:
    def test_alu_dense_stream_cuts_mrf_reads_heavily(self):
        # A stream of chained ALU work: most reads served by LRF/ORF.
        ops = [A(0)]
        for i in range(1, 100):
            ops.append(A(i, i - 1))
        tags = tag_hierarchy(ops)
        mrf = sum(len(t.mrf_reads) for t in tags)
        total = mrf + sum(t.orf_reads + t.lrf_reads for t in tags)
        assert mrf / total < 0.1

    def test_duplicate_operand_counted_once(self):
        tags = tag_hierarchy([A(0), A(1, 0, 0, 0)])
        assert tags[1].lrf_reads == 1
        assert tags[1].orf_reads == 0
        assert tags[1].mrf_reads == ()


@given(
    st.lists(
        st.tuples(
            st.sampled_from([OpClass.ALU, OpClass.SFU, OpClass.LOAD_GLOBAL]),
            st.integers(0, 7),
            st.lists(st.integers(0, 7), max_size=3).map(tuple),
        ),
        max_size=80,
    )
)
@settings(max_examples=60, deadline=None)
def test_every_read_is_tagged_exactly_once(ops):
    tags = tag_hierarchy(ops)
    for (op, dst, srcs), t in zip(ops, tags):
        distinct = len(set(srcs))
        assert len(t.mrf_reads) + t.orf_reads + t.lrf_reads == distinct
        assert len(set(t.mrf_reads)) == len(t.mrf_reads)
