"""Benchmark: the irregular-workload extension study (Sections 1 and 8).

Emulator-traced divergent kernels under baseline vs unified: the
measurable form of the paper's "broadens the scope of applications"
argument.
"""

from repro.experiments import irregular
from conftest import SCALE


def test_irregular(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: irregular.run(SCALE), rounds=1, iterations=1
    )
    save_result("irregular", result.format())
