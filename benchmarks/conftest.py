"""Shared fixtures for the reproduction benchmark harness.

One session-scoped :class:`~repro.experiments.runner.Runner` backs every
bench, so traces, compiled kernels, and simulations are shared across
tables/figures exactly as the paper's trace-driven methodology shares
traces across configurations.

Each bench writes its regenerated table to ``benchmarks/results/`` for
side-by-side comparison with the paper (see EXPERIMENTS.md).
"""

from pathlib import Path

import pytest

from repro.experiments.runner import Runner

RESULTS_DIR = Path(__file__).parent / "results"

#: Workload scale used by the harness; override with REPRO_SCALE.
import os

SCALE = os.environ.get("REPRO_SCALE", "small")


@pytest.fixture(scope="session")
def rn():
    return Runner(SCALE)


@pytest.fixture(scope="session")
def save_result():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)

    return _save
