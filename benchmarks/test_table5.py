"""Benchmark: regenerate Table 5: bank-conflict breakdown of the paper.

Runs the full table5 experiment and records both the wall time
(pytest-benchmark) and the regenerated table (benchmarks/results/).
"""

from repro.experiments import table5


def test_table5(benchmark, rn, save_result):
    result = benchmark.pedantic(
        lambda: table5.run(runner=rn), rounds=1, iterations=1, warmup_rounds=0
    )
    save_result("table5", result.format())
