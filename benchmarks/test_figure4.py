"""Benchmark: regenerate Figure 4: performance vs cache capacity of the paper.

Runs the full figure4 experiment and records both the wall time
(pytest-benchmark) and the regenerated table (benchmarks/results/).
"""

from repro.experiments import figure4


def test_figure4(benchmark, rn, save_result):
    result = benchmark.pedantic(
        lambda: figure4.run(runner=rn), rounds=1, iterations=1, warmup_rounds=0
    )
    save_result("figure4", result.format())
