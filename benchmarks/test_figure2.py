"""Benchmark: regenerate Figure 2: performance vs register file capacity of the paper.

Runs the full figure2 experiment and records both the wall time
(pytest-benchmark) and the regenerated table (benchmarks/results/).
"""

from repro.experiments import figure2


def test_figure2(benchmark, rn, save_result):
    result = benchmark.pedantic(
        lambda: figure2.run(runner=rn), rounds=1, iterations=1, warmup_rounds=0
    )
    save_result("figure2", result.format())
