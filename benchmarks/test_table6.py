"""Benchmark: regenerate Table 6: capacity sensitivity of the paper.

Runs the full table6 experiment and records both the wall time
(pytest-benchmark) and the regenerated table (benchmarks/results/).
"""

from repro.experiments import table6


def test_table6(benchmark, rn, save_result):
    result = benchmark.pedantic(
        lambda: table6.run(runner=rn), rounds=1, iterations=1, warmup_rounds=0
    )
    save_result("table6", result.format())
