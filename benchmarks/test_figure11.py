"""Benchmark: regenerate Figure 11: needle blocking-factor tuning of the paper.

Runs the full figure11 experiment and records both the wall time
(pytest-benchmark) and the regenerated table (benchmarks/results/).
"""

from repro.experiments import figure11


def test_figure11(benchmark, rn, save_result):
    result = benchmark.pedantic(
        lambda: figure11.run(runner=rn), rounds=1, iterations=1, warmup_rounds=0
    )
    save_result("figure11", result.format())
