"""Benchmark: regenerate Figure 8: unified memory partitioning of the paper.

Runs the full figure8 experiment and records both the wall time
(pytest-benchmark) and the regenerated table (benchmarks/results/).
"""

from repro.experiments import figure8


def test_figure8(benchmark, rn, save_result):
    result = benchmark.pedantic(
        lambda: figure8.run(runner=rn), rounds=1, iterations=1, warmup_rounds=0
    )
    save_result("figure8", result.format())
