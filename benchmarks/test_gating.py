"""Benchmark: power-gating unneeded unified memory (Section 8 extension)."""

from repro.experiments import gating


def test_gating(benchmark, rn, save_result):
    result = benchmark.pedantic(
        lambda: gating.run(runner=rn), rounds=1, iterations=1
    )
    save_result("gating", result.format())
