"""Benchmarks: design-choice ablations (DESIGN.md section 6).

* strict cluster-port banks vs the paper's per-bank conflict model (the
  simple-vs-enhanced scatter/gather comparison, paper: ~0.5%);
* register-file hierarchy disabled (the "key enabler" study): MRF
  traffic and arbitration conflicts multiply.
"""

from repro.experiments import ablations


def test_ablation_cluster_port(benchmark, rn, save_result):
    result = benchmark.pedantic(
        lambda: ablations.run_cluster_port(runner=rn), rounds=1, iterations=1
    )
    save_result("ablation_cluster_port", result.format())


def test_ablation_no_hierarchy(benchmark, rn, save_result):
    result = benchmark.pedantic(
        lambda: ablations.run_no_hierarchy(runner=rn), rounds=1, iterations=1
    )
    lines = [result.format(), ""]
    for row in result.rows:
        lines.append(
            f"{row.name}: MRF reads {row.extra['mrf_reads_with']} -> "
            f"{row.extra['mrf_reads_without']} without hierarchy; "
            f"conflict cycles {row.extra['conflicts_with']} -> "
            f"{row.extra['conflicts_without']}"
        )
    save_result("ablation_no_hierarchy", "\n".join(lines))


def test_ablation_orf_size(benchmark, rn, save_result):
    result = benchmark.pedantic(
        lambda: ablations.run_orf_size(runner=rn), rounds=1, iterations=1
    )
    lines = [result.format(), ""]
    for row in result.rows:
        lines.append(f"{row.name}: MRF reads by ORF size {row.extra['mrf_reads']}")
    save_result("ablation_orf_size", "\n".join(lines))


def test_ablation_cache_associativity(benchmark, rn, save_result):
    result = benchmark.pedantic(
        lambda: ablations.run_cache_associativity(runner=rn), rounds=1, iterations=1
    )
    save_result("ablation_cache_associativity", result.format())
