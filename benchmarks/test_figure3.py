"""Benchmark: regenerate Figure 3: performance vs shared memory capacity of the paper.

Runs the full figure3 experiment and records both the wall time
(pytest-benchmark) and the regenerated table (benchmarks/results/).
"""

from repro.experiments import figure3


def test_figure3(benchmark, rn, save_result):
    result = benchmark.pedantic(
        lambda: figure3.run(runner=rn), rounds=1, iterations=1, warmup_rounds=0
    )
    save_result("figure3", result.format())
