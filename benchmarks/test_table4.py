"""Benchmark: regenerate Table 4: SRAM bank access energies of the paper.

Runs the full table4 experiment and records both the wall time
(pytest-benchmark) and the regenerated table (benchmarks/results/).
"""

from repro.experiments import table4


def test_table4(benchmark, rn, save_result):
    result = benchmark.pedantic(
        lambda: table4.run(), rounds=1, iterations=1, warmup_rounds=0
    )
    save_result("table4", result.format())
