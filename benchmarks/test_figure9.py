"""Benchmark: regenerate Figure 9: benefit applications of the paper.

Runs the full figure9 experiment and records both the wall time
(pytest-benchmark) and the regenerated table (benchmarks/results/).
"""

from repro.experiments import figure9


def test_figure9(benchmark, rn, save_result):
    result = benchmark.pedantic(
        lambda: figure9.run(runner=rn), rounds=1, iterations=1, warmup_rounds=0
    )
    save_result("figure9", result.format())
