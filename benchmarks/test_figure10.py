"""Benchmark: regenerate Figure 10: Fermi-like limited flexibility of the paper.

Runs the full figure10 experiment and records both the wall time
(pytest-benchmark) and the regenerated table (benchmarks/results/).
"""

from repro.experiments import figure10


def test_figure10(benchmark, rn, save_result):
    result = benchmark.pedantic(
        lambda: figure10.run(runner=rn), rounds=1, iterations=1, warmup_rounds=0
    )
    save_result("figure10", result.format())
