"""Benchmark: regenerate Table 1: workload characterisation of the paper.

Runs the full table1 experiment and records both the wall time
(pytest-benchmark) and the regenerated table (benchmarks/results/).
"""

from repro.experiments import table1


def test_table1(benchmark, rn, save_result):
    result = benchmark.pedantic(
        lambda: table1.run(runner=rn), rounds=1, iterations=1, warmup_rounds=0
    )
    save_result("table1", result.format())
