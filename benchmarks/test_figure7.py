"""Benchmark: regenerate Figure 7: no-benefit applications of the paper.

Runs the full figure7 experiment and records both the wall time
(pytest-benchmark) and the regenerated table (benchmarks/results/).
"""

from repro.experiments import figure7


def test_figure7(benchmark, rn, save_result):
    result = benchmark.pedantic(
        lambda: figure7.run(runner=rn), rounds=1, iterations=1, warmup_rounds=0
    )
    save_result("figure7", result.format())
